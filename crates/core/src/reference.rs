//! Naive reference implementations of the graph and finder algorithms.
//!
//! These are the **pre-optimization** algorithms, kept verbatim as oracles:
//! the differential property tests in `crates/core/tests/` check the
//! transpose-cached engine of [`crate::graph`] and the memoized CSP solver
//! of [`crate::finder`] against them, and the `perf_snapshot` binary of
//! `gqs-bench` times them to quantify (and regression-track) the speedup.
//!
//! Everything here is deliberately slow and simple:
//!
//! * the residual adjacency is **cloned** per pattern (the old
//!   `NetworkGraph::residual` behavior);
//! * `reach_to` is the `O(n²)`-per-round fixpoint that rescans
//!   `alive - reach` instead of walking transpose rows;
//! * nothing is memoized — every query recomputes from scratch;
//! * the CSP solver re-tests pairwise candidate compatibility inside the
//!   search tree instead of consulting a precomputed matrix.
//!
//! Do not "fix" the complexity of anything in this module: its only value
//! is being an independently-written, obviously-correct baseline.

use crate::failure::{FailProneSystem, FailurePattern};
use crate::graph::NetworkGraph;
use crate::process::{ProcessId, ProcessSet};

/// A naive residual graph: owned adjacency rows, no transpose, no caches.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NaiveResidual {
    n: usize,
    adj: Vec<ProcessSet>,
    alive: ProcessSet,
}

impl NaiveResidual {
    /// Builds the residual of `graph` under `f` by cloning and editing the
    /// adjacency rows.
    ///
    /// # Panics
    ///
    /// Panics if `f` is over a different universe than `graph`.
    pub fn build(graph: &NetworkGraph, f: &FailurePattern) -> Self {
        assert_eq!(f.universe(), graph.len(), "universe mismatch");
        let n = graph.len();
        let alive = f.correct();
        let mut adj: Vec<ProcessSet> = (0..n).map(|p| graph.successors(ProcessId(p))).collect();
        for (p, row) in adj.iter_mut().enumerate() {
            if !alive.contains(ProcessId(p)) {
                *row = ProcessSet::new();
            } else {
                *row &= alive;
            }
        }
        for ch in f.channels() {
            adj[ch.from.index()].remove(ch.to);
        }
        NaiveResidual { n, adj, alive }
    }

    /// The residual of the failure-free pattern.
    pub fn failure_free(graph: &NetworkGraph) -> Self {
        let n = graph.len();
        NaiveResidual {
            n,
            adj: (0..n).map(|p| graph.successors(ProcessId(p))).collect(),
            alive: ProcessSet::full(n),
        }
    }

    /// The alive set.
    pub fn alive(&self) -> ProcessSet {
        self.alive
    }

    /// Forward reachability by frontier iteration (uncached).
    pub fn reach_from(&self, p: ProcessId) -> ProcessSet {
        if !self.alive.contains(p) {
            return ProcessSet::new();
        }
        let mut reach = ProcessSet::singleton(p);
        let mut frontier = reach;
        while !frontier.is_empty() {
            let mut next = ProcessSet::new();
            for q in frontier {
                next |= self.adj[q.index()];
            }
            frontier = next - reach;
            reach |= next;
        }
        reach
    }

    /// Backward reachability by the quadratic fixpoint: each round rescans
    /// every vertex in `alive - reach` for an edge into `reach`.
    pub fn reach_to(&self, p: ProcessId) -> ProcessSet {
        if !self.alive.contains(p) {
            return ProcessSet::new();
        }
        let mut reach = ProcessSet::singleton(p);
        loop {
            let mut grew = false;
            for q in self.alive - reach {
                if self.adj[q.index()].intersects(reach) {
                    reach.insert(q);
                    grew = true;
                }
            }
            if !grew {
                return reach;
            }
        }
    }

    /// The set of vertices that can reach every member of `set` (uncached:
    /// one quadratic `reach_to` per member).
    pub fn reach_to_all(&self, set: ProcessSet) -> ProcessSet {
        if set.is_empty() || !set.is_subset(self.alive) {
            return ProcessSet::new();
        }
        let mut acc = self.alive;
        for p in set {
            acc &= self.reach_to(p);
            if acc.is_empty() {
                break;
            }
        }
        acc
    }

    /// Strongly connected components by pairwise forward-reach probing
    /// (the pre-optimization algorithm, with only its function-local
    /// forward cache).
    pub fn sccs(&self) -> Vec<ProcessSet> {
        let mut assigned = ProcessSet::new();
        let mut out = Vec::new();
        let mut fwd: Vec<Option<ProcessSet>> = vec![None; self.n];
        for p in self.alive {
            if assigned.contains(p) {
                continue;
            }
            let rf = *fwd[p.index()].get_or_insert_with(|| self.reach_from(p));
            let mut scc = ProcessSet::singleton(p);
            for q in rf.without(p) {
                let rq = *fwd[q.index()].get_or_insert_with(|| self.reach_from(q));
                if rq.contains(p) {
                    scc.insert(q);
                }
            }
            assigned |= scc;
            out.push(scc);
        }
        out
    }
}

/// One naive candidate: an SCC used as write quorum plus its maximal
/// reaching read quorum.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
struct NaiveCandidate {
    write: ProcessSet,
    read: ProcessSet,
}

/// Decides GQS existence with the pre-optimization pipeline: cloned
/// residuals, quadratic `reach_to`, and a backtracking solver that
/// re-evaluates pairwise compatibility inside the search tree.
///
/// Used as the finder's oracle and as the perf baseline in BENCH.json.
pub fn gqs_exists_naive(graph: &NetworkGraph, fail_prone: &FailProneSystem) -> bool {
    let candidates: Vec<Vec<NaiveCandidate>> = fail_prone
        .patterns()
        .map(|f| {
            let res = NaiveResidual::build(graph, f);
            res.sccs()
                .into_iter()
                .map(|scc| NaiveCandidate { write: scc, read: res.reach_to_all(scc) })
                .collect()
        })
        .collect();
    let m = candidates.len();
    if m == 0 {
        return true;
    }
    if candidates.iter().any(|c| c.is_empty()) {
        return false;
    }
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_by_key(|&i| candidates[i].len());
    let mut chosen: Vec<Option<usize>> = vec![None; m];
    fn compatible(a: &NaiveCandidate, b: &NaiveCandidate) -> bool {
        a.read.intersects(b.write) && b.read.intersects(a.write)
    }
    fn backtrack(
        pos: usize,
        order: &[usize],
        candidates: &[Vec<NaiveCandidate>],
        chosen: &mut Vec<Option<usize>>,
    ) -> bool {
        if pos == order.len() {
            return true;
        }
        let i = order[pos];
        for c in 0..candidates[i].len() {
            let cand = &candidates[i][c];
            let ok = order[..pos].iter().all(|&j| {
                let cj = chosen[j].expect("assigned earlier");
                compatible(cand, &candidates[j][cj])
            });
            if ok {
                chosen[i] = Some(c);
                if backtrack(pos + 1, order, candidates, chosen) {
                    return true;
                }
                chosen[i] = None;
            }
        }
        false
    }
    backtrack(0, &order, &candidates, &mut chosen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::finder::gqs_exists;
    use crate::{chan, pset};

    #[test]
    fn naive_residual_matches_definitions() {
        let g = NetworkGraph::complete(3);
        let f = FailurePattern::new(3, pset![2], [chan!(0, 1)]).unwrap();
        let r = NaiveResidual::build(&g, &f);
        assert_eq!(r.alive(), pset![0, 1]);
        assert_eq!(r.reach_from(ProcessId(0)), pset![0]);
        assert_eq!(r.reach_to(ProcessId(0)), pset![0, 1]);
        assert_eq!(r.sccs(), vec![pset![0], pset![1]]);
    }

    #[test]
    fn naive_finder_agrees_on_figure1_and_example9() {
        let fig = crate::systems::figure1();
        assert!(gqs_exists_naive(&fig.graph, &fig.fail_prone));
        assert_eq!(
            gqs_exists_naive(&fig.graph, &fig.fail_prone),
            gqs_exists(&fig.graph, &fig.fail_prone)
        );
        let (g, fp) = crate::systems::example9_f_prime();
        assert!(!gqs_exists_naive(&g, &fp));
    }
}
