//! Unidirectional communication channels.
//!
//! The model (§2 of the paper) provides, for every ordered pair of distinct
//! processes `(p, q)`, a unidirectional channel carrying messages from `p`
//! to `q`. A channel is *correct* (reliable) or *faulty* (from some point on
//! it drops every message sent through it — a *disconnection*).

use std::fmt;

use crate::process::ProcessId;

/// A unidirectional channel from one process to another.
///
/// # Examples
///
/// ```
/// use gqs_core::{Channel, ProcessId};
/// let ch = Channel::new(ProcessId(2), ProcessId(0));
/// assert_eq!(ch.to_string(), "(c,a)");
/// assert_eq!(ch.reverse(), Channel::new(ProcessId(0), ProcessId(2)));
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Channel {
    /// Sending endpoint.
    pub from: ProcessId,
    /// Receiving endpoint.
    pub to: ProcessId,
}

impl Channel {
    /// Creates the channel `(from, to)`.
    ///
    /// # Panics
    ///
    /// Panics if `from == to`: the model has no self-channels (a process
    /// can always talk to itself).
    pub fn new(from: ProcessId, to: ProcessId) -> Self {
        assert!(from != to, "self-channels do not exist in the model");
        Channel { from, to }
    }

    /// The channel in the opposite direction.
    #[must_use]
    pub fn reverse(self) -> Self {
        Channel { from: self.to, to: self.from }
    }

    /// Whether either endpoint is in `set`.
    pub fn touches(self, set: crate::ProcessSet) -> bool {
        set.contains(self.from) || set.contains(self.to)
    }
}

impl From<(usize, usize)> for Channel {
    fn from((from, to): (usize, usize)) -> Self {
        Channel::new(ProcessId(from), ProcessId(to))
    }
}

impl fmt::Display for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.from, self.to)
    }
}

/// Convenience constructor: `chan!(0, 1)` is the channel from process 0 to 1.
#[macro_export]
macro_rules! chan {
    ($from:expr, $to:expr) => {
        $crate::Channel::new($crate::ProcessId($from), $crate::ProcessId($to))
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pset;

    #[test]
    fn construction_and_display() {
        let ch = chan!(0, 1);
        assert_eq!(ch.from, ProcessId(0));
        assert_eq!(ch.to, ProcessId(1));
        assert_eq!(ch.to_string(), "(a,b)");
    }

    #[test]
    #[should_panic(expected = "self-channels")]
    fn self_channel_rejected() {
        let _ = chan!(3, 3);
    }

    #[test]
    fn reverse_swaps_endpoints() {
        assert_eq!(chan!(0, 1).reverse(), chan!(1, 0));
    }

    #[test]
    fn touches_checks_both_endpoints() {
        let ch = chan!(0, 1);
        assert!(ch.touches(pset![0]));
        assert!(ch.touches(pset![1, 5]));
        assert!(!ch.touches(pset![2, 3]));
    }

    #[test]
    fn from_tuple() {
        let ch: Channel = (2, 4).into();
        assert_eq!(ch, chan!(2, 4));
    }
}
