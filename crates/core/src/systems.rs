//! The worked examples of the paper, as ready-made systems.
//!
//! * [`figure1`] — the running example: four processes, four failure
//!   patterns, a generalized quorum system whose read quorums are *not*
//!   strongly connected (Examples 1, 2, 7, 8, 10).
//! * [`example9_f_prime`] — Figure 1's system with channel `(a,b)` also
//!   failing in `f1`, which destroys every GQS (Example 9): the tight
//!   bound says nothing is implementable under it.
//! * [`example4_minority`] — the classical minority-crash model `F_M`.

use crate::channel::Channel;
use crate::failure::{FailProneSystem, FailurePattern};
use crate::graph::NetworkGraph;
use crate::process::{ProcessId, ProcessSet};
use crate::quorum::{GeneralizedQuorumSystem, QuorumFamily};

/// Everything Figure 1 defines: the complete network graph on
/// `{a, b, c, d}`, the fail-prone system `{f1..f4}`, the quorum families
/// `R = {R1..R4}` and `W = {W1..W4}`, and the validated GQS.
#[derive(Clone, Debug)]
pub struct Figure1 {
    /// The complete directed graph on 4 processes.
    pub graph: NetworkGraph,
    /// `F = {f1, f2, f3, f4}`.
    pub fail_prone: FailProneSystem,
    /// `R_i` per pattern, in paper order.
    pub reads: Vec<ProcessSet>,
    /// `W_i` per pattern, in paper order.
    pub writes: Vec<ProcessSet>,
    /// The validated generalized quorum system `(F, R, W)`.
    pub gqs: GeneralizedQuorumSystem,
}

/// Process `a` of the paper's examples.
pub const A: ProcessId = ProcessId(0);
/// Process `b` of the paper's examples.
pub const B: ProcessId = ProcessId(1);
/// Process `c` of the paper's examples.
pub const C: ProcessId = ProcessId(2);
/// Process `d` of the paper's examples.
pub const D: ProcessId = ProcessId(3);

fn ch(from: ProcessId, to: ProcessId) -> Channel {
    Channel::new(from, to)
}

/// Builds Figure 1's generalized quorum system.
///
/// Pattern `f1`: process `d` may crash; channels `(c,a)`, `(a,b)`, `(b,a)`
/// stay correct, all other channels among `{a,b,c}` may disconnect. The
/// remaining patterns are the images of `f1` under the rotation
/// `a→b→c→d→a`. Quorums: `W1 = {a,b}`, `R1 = {a,c}` and rotations.
///
/// # Panics
///
/// Never: the construction is validated by tests against Examples 8–9.
pub fn figure1() -> Figure1 {
    let graph = NetworkGraph::complete(4);
    let ids = [A, B, C, D];
    let rot = |p: ProcessId, k: usize| ids[(p.index() + k) % 4];

    let mut patterns = Vec::new();
    let mut reads = Vec::new();
    let mut writes = Vec::new();
    for k in 0..4 {
        // f1 rotated k times.
        let faulty = ProcessSet::singleton(rot(D, k));
        let failing =
            [ch(rot(A, k), rot(C, k)), ch(rot(B, k), rot(C, k)), ch(rot(C, k), rot(B, k))];
        patterns.push(
            FailurePattern::new(4, faulty, failing).expect("figure 1 patterns are well-formed"),
        );
        reads.push(ProcessSet::singleton(rot(A, k)).with(rot(C, k)));
        writes.push(ProcessSet::singleton(rot(A, k)).with(rot(B, k)));
    }
    let fail_prone = FailProneSystem::new(4, patterns).expect("uniform universe");
    let gqs = GeneralizedQuorumSystem::new(
        graph.clone(),
        fail_prone.clone(),
        QuorumFamily::explicit(reads.clone()).expect("nonempty"),
        QuorumFamily::explicit(writes.clone()).expect("nonempty"),
    )
    .expect("Example 8: Figure 1 is a valid GQS");
    Figure1 { graph, fail_prone, reads, writes, gqs }
}

/// Example 9's modified fail-prone system `F' = {f1', f2, f3, f4}` where
/// `f1'` additionally fails channel `(a,b)`. The paper shows `F'` admits
/// **no** generalized quorum system, hence (Theorem 2) no implementation
/// of registers, snapshots or lattice agreement provides
/// obstruction-freedom anywhere under it.
pub fn example9_f_prime() -> (NetworkGraph, FailProneSystem) {
    let fig = figure1();
    let mut patterns: Vec<FailurePattern> = fig.fail_prone.patterns().cloned().collect();
    patterns[0] =
        patterns[0].with_channel(ch(A, B)).expect("(a,b) is between correct processes of f1");
    let fp = FailProneSystem::new(4, patterns).expect("uniform universe");
    (fig.graph, fp)
}

/// A grid quorum system over `rows × cols` processes: read quorums are
/// full rows, write quorums are full columns (every row meets every
/// column, so Consistency is structural). Tolerates any `k` crashes with
/// `k < min(rows, cols)` — `k` crashes can ruin at most `k` rows and `k`
/// columns.
///
/// Classical quorum-system literature (\[34\] in the paper) studies grids
/// for their `O(√n)` quorum size; here they serve as a non-threshold
/// baseline for the decision procedures and benches.
///
/// # Errors
///
/// Fails if the grid is degenerate or `k ≥ min(rows, cols)`.
pub fn grid_system(
    rows: usize,
    cols: usize,
    k: usize,
) -> Result<crate::ClassicalQuorumSystem, crate::QuorumSystemError> {
    use crate::{ClassicalQuorumSystem, QuorumFamily, QuorumSystemError};
    let n = rows * cols;
    if rows == 0 || cols == 0 || k >= rows.min(cols) {
        return Err(QuorumSystemError::BadThreshold { n, min_size: k });
    }
    let cell = |r: usize, c: usize| ProcessId(r * cols + c);
    let reads: Vec<ProcessSet> =
        (0..rows).map(|r| (0..cols).map(|c| cell(r, c)).collect()).collect();
    let writes: Vec<ProcessSet> =
        (0..cols).map(|c| (0..rows).map(|r| cell(r, c)).collect()).collect();
    let fail_prone = FailProneSystem::threshold(n, k)
        .map_err(|_| QuorumSystemError::BadThreshold { n, min_size: k })?;
    ClassicalQuorumSystem::new(
        fail_prone,
        QuorumFamily::explicit(reads)?,
        QuorumFamily::explicit(writes)?,
    )
}

/// Example 4: the standard minority-crash model `F_M` over `n` processes
/// (at most `⌊(n-1)/2⌋` crashes, channels between correct processes
/// reliable), paired with a complete network graph.
pub fn example4_minority(n: usize) -> (NetworkGraph, FailProneSystem) {
    let k = (n.saturating_sub(1)) / 2;
    (NetworkGraph::complete(n), FailProneSystem::threshold(n, k).expect("k < n by construction"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::finder::{find_gqs, gqs_exists, qs_plus_exists};
    use crate::pset;

    #[test]
    fn figure1_pattern_f1_matches_example1() {
        let fig = figure1();
        let f1 = fig.fail_prone.pattern(0);
        assert_eq!(f1.faulty(), pset![3]); // d may crash
        let failing: Vec<String> = f1.channels().map(|c| c.to_string()).collect();
        assert_eq!(failing, vec!["(a,c)", "(b,c)", "(c,b)"]);
        // Correct channels among correct processes: (c,a),(a,b),(b,a).
        let res = fig.graph.residual(f1);
        assert!(res.has_channel(ch(C, A)));
        assert!(res.has_channel(ch(A, B)));
        assert!(res.has_channel(ch(B, A)));
        assert!(!res.has_channel(ch(A, C)));
        assert!(!res.has_channel(ch(B, C)));
        assert!(!res.has_channel(ch(C, B)));
    }

    #[test]
    fn figure1_quorums_match_example10() {
        let fig = figure1();
        assert_eq!(fig.reads[0], pset![0, 2]); // R1 = {a, c}
        assert_eq!(fig.writes[0], pset![0, 1]); // W1 = {a, b}
    }

    #[test]
    fn figure1_example7_availability_and_reachability() {
        let fig = figure1();
        for i in 0..4 {
            let res = fig.graph.residual(fig.fail_prone.pattern(i));
            assert!(res.f_available(fig.writes[i]), "W{} must be f{}-available", i + 1, i + 1);
            assert!(
                res.f_reachable(fig.writes[i], fig.reads[i]),
                "W{} must be f{}-reachable from R{}",
                i + 1,
                i + 1,
                i + 1
            );
            // The paper stresses read quorums are NOT strongly connected.
            assert!(!res.f_available(fig.reads[i]));
        }
    }

    #[test]
    fn figure1_example8_consistency() {
        let fig = figure1();
        for r in &fig.reads {
            for w in &fig.writes {
                assert!(r.intersects(*w), "R {r} and W {w} must intersect");
            }
        }
    }

    #[test]
    fn figure1_example9_u_f_values() {
        let fig = figure1();
        assert_eq!(fig.gqs.u_f(0), pset![0, 1]); // {a,b}
        assert_eq!(fig.gqs.u_f(1), pset![1, 2]); // {b,c}
        assert_eq!(fig.gqs.u_f(2), pset![2, 3]); // {c,d}
        assert_eq!(fig.gqs.u_f(3), pset![3, 0]); // {d,a}
    }

    #[test]
    fn figure1_admits_gqs_but_no_qs_plus() {
        let fig = figure1();
        assert!(gqs_exists(&fig.graph, &fig.fail_prone));
        // The headline separation: under f1 no SCC contains both a read
        // and write quorum for all patterns simultaneously.
        assert!(!qs_plus_exists(&fig.graph, &fig.fail_prone));
    }

    #[test]
    fn example9_f_prime_admits_no_gqs() {
        let (graph, fp) = example9_f_prime();
        assert!(!gqs_exists(&graph, &fp));
        assert!(find_gqs(&graph, &fp).is_none());
        assert!(!crate::finder::gqs_exists_brute_force(&graph, &fp));
    }

    #[test]
    fn finder_recovers_figure1_up_to_maximality() {
        let fig = figure1();
        let w = find_gqs(&fig.graph, &fig.fail_prone).expect("Figure 1 admits a GQS");
        // The found write quorums must be the U_f sets (maximal SCCs), and
        // each read choice must contain the corresponding paper R_i.
        for i in 0..4 {
            let (r, wq) = w.per_pattern[i];
            assert_eq!(wq, fig.gqs.u_f(i));
            assert!(fig.reads[i].is_subset(r));
        }
    }

    #[test]
    fn grid_system_consistency_and_availability() {
        let qs = grid_system(3, 3, 2).unwrap();
        // Rows meet columns in exactly one cell.
        let reads = qs.reads().as_explicit().unwrap().to_vec();
        let writes = qs.writes().as_explicit().unwrap().to_vec();
        for r in &reads {
            for w in &writes {
                assert_eq!((*r & *w).len(), 1);
            }
        }
        // Embeds into a GQS over the complete graph.
        let gqs = qs.to_generalized().unwrap();
        assert_eq!(gqs.u_f(0), gqs.fail_prone().pattern(0).correct());
    }

    #[test]
    fn grid_system_rejects_too_many_crashes() {
        assert!(grid_system(3, 3, 3).is_err());
        assert!(grid_system(2, 4, 2).is_err());
        assert!(grid_system(0, 3, 0).is_err());
    }

    #[test]
    fn grid_system_rectangular() {
        let qs = grid_system(2, 4, 1).unwrap();
        assert_eq!(qs.reads().as_explicit().unwrap().len(), 2);
        assert_eq!(qs.writes().as_explicit().unwrap().len(), 4);
        assert_eq!(qs.reads().as_explicit().unwrap()[0].len(), 4);
        assert_eq!(qs.writes().as_explicit().unwrap()[0].len(), 2);
    }

    #[test]
    fn example4_minority_is_classical() {
        let (g, fp) = example4_minority(5);
        assert!(fp.is_crash_only());
        assert_eq!(crate::finder::classical_qs_exists(&fp), Some(true));
        assert!(gqs_exists(&g, &fp));
        assert!(qs_plus_exists(&g, &fp));
    }
}
