//! # Generalized quorum systems
//!
//! Core framework of the reproduction of *"Tight Bounds on Channel
//! Reliability via Generalized Quorum Systems"* (PODC 2025): fail-prone
//! systems mixing **process crashes** with **channel disconnections**,
//! network/residual graphs, classical and generalized quorum systems, and
//! exact decision procedures for their existence.
//!
//! The paper's central object is the *generalized quorum system* (GQS): a
//! pair of read/write quorum families where every read quorum intersects
//! every write quorum, and under every failure pattern some strongly
//! connected write quorum is **unidirectionally reachable** from some read
//! quorum. The existence of a GQS is *exactly* the condition under which
//! atomic registers, atomic snapshots, lattice agreement and partially
//! synchronous consensus are implementable (Theorems 1, 2, 5, 6).
//!
//! ## Quick tour
//!
//! ```
//! use gqs_core::finder::{find_gqs, qs_plus_exists};
//! use gqs_core::systems::{example9_f_prime, figure1};
//!
//! // Figure 1 of the paper: weak, unidirectional connectivity ...
//! let fig = figure1();
//! // ... admits a GQS (so registers & consensus are implementable) ...
//! let witness = find_gqs(&fig.graph, &fig.fail_prone).unwrap();
//! assert_eq!(witness.system.u_f(0), fig.gqs.u_f(0));
//! // ... but no strongly connected QS+ — the headline separation.
//! assert!(!qs_plus_exists(&fig.graph, &fig.fail_prone));
//!
//! // Example 9: failing one more channel destroys every GQS, so by the
//! // lower bound *nothing* is implementable anywhere.
//! let (graph, f_prime) = example9_f_prime();
//! assert!(find_gqs(&graph, &f_prime).is_none());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Error enums embed `ProcessSet` counterexamples, and `ProcessSet` is a
// deliberately `Copy` 128-byte multi-word bitset. The constructors that
// return them are cold validation paths, so a large `Err` variant costs
// nothing measurable and boxing would complicate every match site.
#![allow(clippy::result_large_err)]

pub mod channel;
pub mod failure;
pub mod finder;
pub mod graph;
pub mod process;
pub mod quorum;
pub mod reference;
pub mod systems;

pub use channel::Channel;
pub use failure::{BuildPatternError, FailProneSystem, FailurePattern};
pub use finder::{
    explain_unsolvable, find_gqs, find_qs_plus, find_threshold_gqs, gqs_exists, qs_plus_exists,
    GqsWitness, Unsolvability,
};
pub use graph::{NetworkGraph, ResidualGraph};
pub use process::{ProcessId, ProcessSet, MAX_PROCESSES};
pub use quorum::{
    majority_system, AvailabilityWitness, ClassicalQuorumSystem, FamilyMetrics,
    GeneralizedQuorumSystem, QsPlus, QuorumFamily, QuorumSystemError,
};
pub use systems::grid_system;
