//! Process identifiers and compact process sets.
//!
//! The paper's system model (§2) has a finite set `P` of `n` processes.
//! Processes here are numbered `0..n`; [`ProcessSet`] is a bitset over those
//! numbers, supporting the set algebra that quorum systems need (union,
//! intersection, complement, subset tests) in a handful of machine
//! instructions per 64-process word.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{BitAnd, BitAndAssign, BitOr, BitOrAssign, Sub, SubAssign};

/// Maximum number of processes supported by [`ProcessSet`].
///
/// The bitset is backed by a fixed array of [`ProcessSet::WORDS`] 64-bit
/// words. Systems in the paper are tiny; the cap exists so that sets stay
/// `Copy` (no heap, no lifetimes) while production-scale sweeps can still
/// model systems of up to 1024 replicas.
pub const MAX_PROCESSES: usize = 1024;

/// Identifier of a process in the system.
///
/// Processes are numbered `0..n`. The paper names processes `a, b, c, ...`;
/// [`ProcessId`]'s `Display` renders small ids that way (`a`..`z`), falling
/// back to `p27`, `p28`, ... beyond that.
///
/// # Examples
///
/// ```
/// use gqs_core::ProcessId;
/// let a = ProcessId(0);
/// assert_eq!(a.to_string(), "a");
/// assert_eq!(ProcessId(30).to_string(), "p30");
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ProcessId(pub usize);

impl ProcessId {
    /// Returns the numeric index of this process.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl From<usize> for ProcessId {
    fn from(i: usize) -> Self {
        ProcessId(i)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 26 {
            write!(f, "{}", (b'a' + self.0 as u8) as char)
        } else {
            write!(f, "p{}", self.0)
        }
    }
}

/// A set of processes, stored as a fixed-width multi-word bitset.
///
/// This is the workhorse type of the whole workspace: quorums, failure
/// patterns, reachability sets and strongly connected components are all
/// `ProcessSet`s.
///
/// The backing store is `[u64; WORDS]` (`WORDS * 64 = MAX_PROCESSES`
/// bits), so the type stays `Copy` and the set algebra compiles to short,
/// branch-free word loops that LLVM vectorizes. Algorithms that know their
/// universe size `n` can restrict themselves to the low
/// [`ProcessSet::words_for`]`(n)` words (see [`ProcessSet::word`] /
/// [`ProcessSet::as_words`]) — members beyond `n` never exist unless
/// explicitly inserted, so the high words of well-formed sets are zero and
/// word-bounded loops are exact, not approximate.
///
/// # Examples
///
/// ```
/// use gqs_core::{ProcessId, ProcessSet};
/// let r: ProcessSet = [0, 2].into_iter().collect();
/// let w: ProcessSet = [0, 1].into_iter().collect();
/// assert!(!(r & w).is_empty()); // quorum intersection
/// assert_eq!((r | w).len(), 3);
/// assert!(r.contains(ProcessId(2)));
/// // Multi-word: processes past 128 are first-class.
/// let big: ProcessSet = [5, 500, 1000].into_iter().collect();
/// assert_eq!(big.len(), 3);
/// assert!(big.contains(ProcessId(500)));
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Default)]
pub struct ProcessSet {
    words: [u64; Self::WORDS],
}

impl ProcessSet {
    /// Number of 64-bit words backing a set (`MAX_PROCESSES / 64`).
    pub const WORDS: usize = MAX_PROCESSES / 64;

    /// The number of backing words needed for a universe of `n` processes
    /// (`⌈n / 64⌉`, and at least 1 so bounded loops are never empty).
    ///
    /// Hot paths that know `n` loop over `words_for(n)` words instead of
    /// all [`ProcessSet::WORDS`], which keeps small universes as fast as
    /// the old single-word representation.
    #[inline]
    pub const fn words_for(n: usize) -> usize {
        if n == 0 {
            1
        } else {
            n.div_ceil(64)
        }
    }

    /// The empty set.
    #[inline]
    pub const fn new() -> Self {
        ProcessSet { words: [0; Self::WORDS] }
    }

    /// The empty set (alias of [`ProcessSet::new`]).
    #[inline]
    pub const fn empty() -> Self {
        Self::new()
    }

    /// The set `{0, 1, ..., n-1}` of all `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n > MAX_PROCESSES`.
    #[inline]
    pub fn full(n: usize) -> Self {
        assert!(n <= MAX_PROCESSES, "at most {MAX_PROCESSES} processes are supported");
        let mut words = [0u64; Self::WORDS];
        let (full_words, rem) = (n / 64, n % 64);
        for w in words.iter_mut().take(full_words) {
            *w = u64::MAX;
        }
        if rem != 0 {
            words[full_words] = (1u64 << rem) - 1;
        }
        ProcessSet { words }
    }

    /// The singleton set `{p}`.
    #[inline]
    pub fn singleton(p: ProcessId) -> Self {
        let mut s = Self::new();
        s.insert(p);
        s
    }

    /// The backing words, low word first (bit `i` of word `w` is process
    /// `64 * w + i`).
    #[inline]
    pub fn as_words(&self) -> &[u64; Self::WORDS] {
        &self.words
    }

    /// The `i`-th backing word (zero for `i >= WORDS`, so word-bounded
    /// loops need no range checks).
    #[inline]
    pub fn word(&self, i: usize) -> u64 {
        if i < Self::WORDS {
            self.words[i]
        } else {
            0
        }
    }

    /// Overwrites the `i`-th backing word.
    ///
    /// # Panics
    ///
    /// Panics if `i >= WORDS`.
    #[inline]
    pub fn set_word(&mut self, i: usize, w: u64) {
        self.words[i] = w;
    }

    /// Rebuilds a set from backing words, low word first; missing high
    /// words are zero.
    ///
    /// # Panics
    ///
    /// Panics if more than [`ProcessSet::WORDS`] words are given.
    #[inline]
    pub fn from_words(words: &[u64]) -> Self {
        assert!(words.len() <= Self::WORDS, "too many backing words");
        let mut s = Self::new();
        s.words[..words.len()].copy_from_slice(words);
        s
    }

    /// Inserts a process; returns `true` if it was not already present.
    ///
    /// # Panics
    ///
    /// Panics if `p.index() >= MAX_PROCESSES`.
    #[inline]
    pub fn insert(&mut self, p: ProcessId) -> bool {
        assert!(p.index() < MAX_PROCESSES, "process id out of range");
        let (w, mask) = (p.index() / 64, 1u64 << (p.index() % 64));
        let fresh = self.words[w] & mask == 0;
        self.words[w] |= mask;
        fresh
    }

    /// Removes a process; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, p: ProcessId) -> bool {
        if p.index() >= MAX_PROCESSES {
            return false;
        }
        let (w, mask) = (p.index() / 64, 1u64 << (p.index() % 64));
        let present = self.words[w] & mask != 0;
        self.words[w] &= !mask;
        present
    }

    /// Tests membership.
    #[inline]
    pub fn contains(self, p: ProcessId) -> bool {
        p.index() < MAX_PROCESSES && self.words[p.index() / 64] & (1u64 << (p.index() % 64)) != 0
    }

    /// Returns a copy with `p` inserted.
    #[inline]
    #[must_use]
    pub fn with(mut self, p: ProcessId) -> Self {
        self.insert(p);
        self
    }

    /// Returns a copy with `p` removed.
    #[inline]
    #[must_use]
    pub fn without(mut self, p: ProcessId) -> Self {
        self.remove(p);
        self
    }

    /// Number of processes in the set.
    #[inline]
    pub fn len(self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    ///
    /// Like the other whole-set predicates, this is a branch-free word
    /// fold, which the optimizer turns into a handful of vector ops —
    /// faster than a short-circuiting scan for sets this small.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.words.iter().fold(0, |acc, &w| acc | w) == 0
    }

    /// Whether `self ⊆ other`.
    #[inline]
    pub fn is_subset(self, other: ProcessSet) -> bool {
        self.words.iter().zip(other.words.iter()).fold(0, |acc, (&a, &b)| acc | (a & !b)) == 0
    }

    /// Whether `self ∩ other ≠ ∅`.
    #[inline]
    pub fn intersects(self, other: ProcessSet) -> bool {
        self.words.iter().zip(other.words.iter()).fold(0, |acc, (&a, &b)| acc | (a & b)) != 0
    }

    /// Whether `self ∩ other = ∅`.
    #[inline]
    pub fn is_disjoint(self, other: ProcessSet) -> bool {
        !self.intersects(other)
    }

    /// Complement relative to the universe `{0..n}`.
    #[inline]
    #[must_use]
    pub fn complement(self, n: usize) -> Self {
        let mut out = Self::full(n);
        for (o, s) in out.words.iter_mut().zip(self.words.iter()) {
            *o &= !s;
        }
        out
    }

    /// The smallest process in the set, if any.
    #[inline]
    pub fn first(self) -> Option<ProcessId> {
        for (i, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(ProcessId(i * 64 + w.trailing_zeros() as usize));
            }
        }
        None
    }

    /// Iterates over members in increasing order.
    pub fn iter(self) -> Iter {
        Iter { words: self.words, word: 0 }
    }
}

impl PartialOrd for ProcessSet {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ProcessSet {
    /// Numeric order of the backing bits (most significant word first),
    /// matching the order of the old `u128` representation so sorted
    /// quorum lists and map iteration keep their historical order.
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        for (a, b) in self.words.iter().zip(other.words.iter()).rev() {
            match a.cmp(b) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl fmt::Debug for ProcessSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for ProcessSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, p) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

impl BitOr for ProcessSet {
    type Output = ProcessSet;
    #[inline]
    fn bitor(mut self, rhs: Self) -> Self {
        self |= rhs;
        self
    }
}

impl BitOrAssign for ProcessSet {
    #[inline]
    fn bitor_assign(&mut self, rhs: Self) {
        for (a, b) in self.words.iter_mut().zip(rhs.words.iter()) {
            *a |= b;
        }
    }
}

impl BitAnd for ProcessSet {
    type Output = ProcessSet;
    #[inline]
    fn bitand(mut self, rhs: Self) -> Self {
        self &= rhs;
        self
    }
}

impl BitAndAssign for ProcessSet {
    #[inline]
    fn bitand_assign(&mut self, rhs: Self) {
        for (a, b) in self.words.iter_mut().zip(rhs.words.iter()) {
            *a &= b;
        }
    }
}

impl Sub for ProcessSet {
    type Output = ProcessSet;
    #[inline]
    fn sub(mut self, rhs: Self) -> Self {
        self -= rhs;
        self
    }
}

impl SubAssign for ProcessSet {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        for (a, b) in self.words.iter_mut().zip(rhs.words.iter()) {
            *a &= !b;
        }
    }
}

impl FromIterator<ProcessId> for ProcessSet {
    fn from_iter<I: IntoIterator<Item = ProcessId>>(iter: I) -> Self {
        let mut s = ProcessSet::new();
        for p in iter {
            s.insert(p);
        }
        s
    }
}

impl FromIterator<usize> for ProcessSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        iter.into_iter().map(ProcessId).collect()
    }
}

impl Extend<ProcessId> for ProcessSet {
    fn extend<I: IntoIterator<Item = ProcessId>>(&mut self, iter: I) {
        for p in iter {
            self.insert(p);
        }
    }
}

impl IntoIterator for ProcessSet {
    type Item = ProcessId;
    type IntoIter = Iter;
    fn into_iter(self) -> Iter {
        self.iter()
    }
}

/// Iterator over the members of a [`ProcessSet`], in increasing order.
#[derive(Clone, Debug)]
pub struct Iter {
    words: [u64; ProcessSet::WORDS],
    word: usize,
}

impl Iterator for Iter {
    type Item = ProcessId;

    #[inline]
    fn next(&mut self) -> Option<ProcessId> {
        while self.word < ProcessSet::WORDS {
            let w = self.words[self.word];
            if w != 0 {
                let bit = w.trailing_zeros() as usize;
                self.words[self.word] = w & (w - 1);
                return Some(ProcessId(self.word * 64 + bit));
            }
            self.word += 1;
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n: usize = self.words[self.word.min(ProcessSet::WORDS)..]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum();
        (n, Some(n))
    }
}

impl ExactSizeIterator for Iter {}

/// Convenience constructor: `pset![0, 2, 3]`.
#[macro_export]
macro_rules! pset {
    ($($p:expr),* $(,)?) => {
        {
            #[allow(unused_mut)]
            let mut s = $crate::ProcessSet::new();
            $(s.insert($crate::ProcessId($p));)*
            s
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_has_no_members() {
        let s = ProcessSet::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.iter().count(), 0);
        assert_eq!(s.first(), None);
        assert_eq!(s.to_string(), "{}");
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = ProcessSet::new();
        assert!(s.insert(ProcessId(3)));
        assert!(!s.insert(ProcessId(3)));
        assert!(s.contains(ProcessId(3)));
        assert!(!s.contains(ProcessId(2)));
        assert!(s.remove(ProcessId(3)));
        assert!(!s.remove(ProcessId(3)));
        assert!(s.is_empty());
    }

    #[test]
    fn full_covers_exactly_n() {
        let s = ProcessSet::full(5);
        assert_eq!(s.len(), 5);
        assert!(s.contains(ProcessId(4)));
        assert!(!s.contains(ProcessId(5)));
        let all = ProcessSet::full(MAX_PROCESSES);
        assert_eq!(all.len(), MAX_PROCESSES);
        // Word-boundary universes are exact.
        for n in [63, 64, 65, 127, 128, 129, 512, 1023] {
            let s = ProcessSet::full(n);
            assert_eq!(s.len(), n, "full({n})");
            assert!(s.contains(ProcessId(n - 1)));
            assert!(!s.contains(ProcessId(n)));
        }
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn full_rejects_oversized_universe() {
        let _ = ProcessSet::full(MAX_PROCESSES + 1);
    }

    #[test]
    fn set_algebra() {
        let a = pset![0, 1, 2];
        let b = pset![2, 3];
        assert_eq!(a | b, pset![0, 1, 2, 3]);
        assert_eq!(a & b, pset![2]);
        assert_eq!(a - b, pset![0, 1]);
        assert!(a.intersects(b));
        assert!(pset![0].is_disjoint(pset![1]));
        assert!(pset![1, 2].is_subset(a));
        assert!(!a.is_subset(b));
        assert_eq!(a.complement(5), pset![3, 4]);
    }

    #[test]
    fn set_algebra_across_word_boundaries() {
        let a = pset![10, 63, 64, 200, 1000];
        let b = pset![63, 200, 1023];
        assert_eq!(a & b, pset![63, 200]);
        assert_eq!(a - b, pset![10, 64, 1000]);
        assert_eq!((a | b).len(), 6);
        assert!(a.intersects(b));
        assert!(pset![63, 200].is_subset(a));
        assert!(!a.is_subset(b));
        let co = a.complement(MAX_PROCESSES);
        assert_eq!(co.len(), MAX_PROCESSES - a.len());
        assert!(!co.intersects(a));
    }

    #[test]
    fn ordering_matches_numeric_bit_order() {
        // The high word dominates, as it did when the backing was one u128.
        assert!(pset![129] > pset![128]);
        assert!(pset![128] > pset![0, 1, 2, 127]);
        assert!(pset![5] > pset![4, 3]);
        let mut v = vec![pset![200], pset![0], pset![64], pset![1]];
        v.sort_unstable();
        assert_eq!(v, vec![pset![0], pset![1], pset![64], pset![200]]);
    }

    #[test]
    fn word_accessors_round_trip() {
        let s = pset![0, 64, 65, 1023];
        assert_eq!(s.word(0), 1);
        assert_eq!(s.word(1), 0b11);
        assert_eq!(s.word(ProcessSet::WORDS - 1), 1u64 << 63);
        assert_eq!(s.word(ProcessSet::WORDS + 5), 0);
        assert_eq!(ProcessSet::from_words(s.as_words()), s);
        let mut t = ProcessSet::new();
        for i in 0..ProcessSet::WORDS {
            t.set_word(i, s.word(i));
        }
        assert_eq!(t, s);
        assert_eq!(ProcessSet::from_words(&[1, 0b11]), pset![0, 64, 65]);
    }

    #[test]
    fn words_for_is_ceiling_division() {
        assert_eq!(ProcessSet::words_for(0), 1);
        assert_eq!(ProcessSet::words_for(1), 1);
        assert_eq!(ProcessSet::words_for(64), 1);
        assert_eq!(ProcessSet::words_for(65), 2);
        assert_eq!(ProcessSet::words_for(128), 2);
        assert_eq!(ProcessSet::words_for(129), 3);
        assert_eq!(ProcessSet::words_for(MAX_PROCESSES), ProcessSet::WORDS);
    }

    #[test]
    fn iteration_is_sorted() {
        let s = pset![7, 1, 4];
        let v: Vec<usize> = s.iter().map(|p| p.index()).collect();
        assert_eq!(v, vec![1, 4, 7]);
        assert_eq!(s.iter().len(), 3);
        assert_eq!(s.first(), Some(ProcessId(1)));
    }

    #[test]
    fn iteration_crosses_words() {
        let s = pset![63, 64, 127, 128, 512, 1023];
        let v: Vec<usize> = s.iter().map(|p| p.index()).collect();
        assert_eq!(v, vec![63, 64, 127, 128, 512, 1023]);
        assert_eq!(s.iter().len(), 6);
        assert_eq!(s.first(), Some(ProcessId(63)));
    }

    #[test]
    fn display_uses_letters_for_small_ids() {
        assert_eq!(pset![0, 1, 3].to_string(), "{a,b,d}");
        assert_eq!(ProcessId(25).to_string(), "z");
        assert_eq!(ProcessId(26).to_string(), "p26");
    }

    #[test]
    fn from_iterator_collects() {
        let s: ProcessSet = vec![ProcessId(2), ProcessId(0)].into_iter().collect();
        assert_eq!(s, pset![0, 2]);
        let t: ProcessSet = (0..4).collect();
        assert_eq!(t, ProcessSet::full(4));
        let big: ProcessSet = (0..300).collect();
        assert_eq!(big, ProcessSet::full(300));
    }

    #[test]
    fn with_and_without_do_not_mutate_original() {
        let s = pset![1];
        assert_eq!(s.with(ProcessId(2)), pset![1, 2]);
        assert_eq!(s.without(ProcessId(1)), pset![]);
        assert_eq!(s, pset![1]);
    }
}
