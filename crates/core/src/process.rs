//! Process identifiers and compact process sets.
//!
//! The paper's system model (§2) has a finite set `P` of `n` processes.
//! Processes here are numbered `0..n`; [`ProcessSet`] is a bitset over those
//! numbers, supporting the set algebra that quorum systems need (union,
//! intersection, complement, subset tests) in a handful of machine
//! instructions.

use std::fmt;
use std::ops::{BitAnd, BitAndAssign, BitOr, BitOrAssign, Sub, SubAssign};

/// Maximum number of processes supported by [`ProcessSet`].
///
/// The bitset is backed by a `u128`; systems in the paper (and in every
/// experiment here) are far smaller.
pub const MAX_PROCESSES: usize = 128;

/// Identifier of a process in the system.
///
/// Processes are numbered `0..n`. The paper names processes `a, b, c, ...`;
/// [`ProcessId`]'s `Display` renders small ids that way (`a`..`z`), falling
/// back to `p27`, `p28`, ... beyond that.
///
/// # Examples
///
/// ```
/// use gqs_core::ProcessId;
/// let a = ProcessId(0);
/// assert_eq!(a.to_string(), "a");
/// assert_eq!(ProcessId(30).to_string(), "p30");
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ProcessId(pub usize);

impl ProcessId {
    /// Returns the numeric index of this process.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl From<usize> for ProcessId {
    fn from(i: usize) -> Self {
        ProcessId(i)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 26 {
            write!(f, "{}", (b'a' + self.0 as u8) as char)
        } else {
            write!(f, "p{}", self.0)
        }
    }
}

/// A set of processes, stored as a 128-bit bitset.
///
/// This is the workhorse type of the whole workspace: quorums, failure
/// patterns, reachability sets and strongly connected components are all
/// `ProcessSet`s.
///
/// # Examples
///
/// ```
/// use gqs_core::{ProcessId, ProcessSet};
/// let r: ProcessSet = [0, 2].into_iter().collect();
/// let w: ProcessSet = [0, 1].into_iter().collect();
/// assert!(!(r & w).is_empty()); // quorum intersection
/// assert_eq!((r | w).len(), 3);
/// assert!(r.contains(ProcessId(2)));
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ProcessSet {
    bits: u128,
}

impl ProcessSet {
    /// The empty set.
    #[inline]
    pub const fn new() -> Self {
        ProcessSet { bits: 0 }
    }

    /// The empty set (alias of [`ProcessSet::new`]).
    #[inline]
    pub const fn empty() -> Self {
        Self::new()
    }

    /// The set `{0, 1, ..., n-1}` of all `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n > MAX_PROCESSES`.
    #[inline]
    pub fn full(n: usize) -> Self {
        assert!(n <= MAX_PROCESSES, "at most {MAX_PROCESSES} processes are supported");
        if n == MAX_PROCESSES {
            ProcessSet { bits: u128::MAX }
        } else {
            ProcessSet { bits: (1u128 << n) - 1 }
        }
    }

    /// The singleton set `{p}`.
    #[inline]
    pub fn singleton(p: ProcessId) -> Self {
        let mut s = Self::new();
        s.insert(p);
        s
    }

    /// Inserts a process; returns `true` if it was not already present.
    ///
    /// # Panics
    ///
    /// Panics if `p.index() >= MAX_PROCESSES`.
    #[inline]
    pub fn insert(&mut self, p: ProcessId) -> bool {
        assert!(p.index() < MAX_PROCESSES, "process id out of range");
        let mask = 1u128 << p.index();
        let fresh = self.bits & mask == 0;
        self.bits |= mask;
        fresh
    }

    /// Removes a process; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, p: ProcessId) -> bool {
        if p.index() >= MAX_PROCESSES {
            return false;
        }
        let mask = 1u128 << p.index();
        let present = self.bits & mask != 0;
        self.bits &= !mask;
        present
    }

    /// Tests membership.
    #[inline]
    pub fn contains(self, p: ProcessId) -> bool {
        p.index() < MAX_PROCESSES && self.bits & (1u128 << p.index()) != 0
    }

    /// Returns a copy with `p` inserted.
    #[inline]
    #[must_use]
    pub fn with(mut self, p: ProcessId) -> Self {
        self.insert(p);
        self
    }

    /// Returns a copy with `p` removed.
    #[inline]
    #[must_use]
    pub fn without(mut self, p: ProcessId) -> Self {
        self.remove(p);
        self
    }

    /// Number of processes in the set.
    #[inline]
    pub fn len(self) -> usize {
        self.bits.count_ones() as usize
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.bits == 0
    }

    /// Whether `self ⊆ other`.
    #[inline]
    pub fn is_subset(self, other: ProcessSet) -> bool {
        self.bits & !other.bits == 0
    }

    /// Whether `self ∩ other ≠ ∅`.
    #[inline]
    pub fn intersects(self, other: ProcessSet) -> bool {
        self.bits & other.bits != 0
    }

    /// Whether `self ∩ other = ∅`.
    #[inline]
    pub fn is_disjoint(self, other: ProcessSet) -> bool {
        !self.intersects(other)
    }

    /// Complement relative to the universe `{0..n}`.
    #[inline]
    #[must_use]
    pub fn complement(self, n: usize) -> Self {
        ProcessSet { bits: !self.bits & Self::full(n).bits }
    }

    /// The smallest process in the set, if any.
    #[inline]
    pub fn first(self) -> Option<ProcessId> {
        if self.bits == 0 {
            None
        } else {
            Some(ProcessId(self.bits.trailing_zeros() as usize))
        }
    }

    /// Iterates over members in increasing order.
    pub fn iter(self) -> Iter {
        Iter { bits: self.bits }
    }
}

impl fmt::Debug for ProcessSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for ProcessSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, p) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

impl BitOr for ProcessSet {
    type Output = ProcessSet;
    #[inline]
    fn bitor(self, rhs: Self) -> Self {
        ProcessSet { bits: self.bits | rhs.bits }
    }
}

impl BitOrAssign for ProcessSet {
    #[inline]
    fn bitor_assign(&mut self, rhs: Self) {
        self.bits |= rhs.bits;
    }
}

impl BitAnd for ProcessSet {
    type Output = ProcessSet;
    #[inline]
    fn bitand(self, rhs: Self) -> Self {
        ProcessSet { bits: self.bits & rhs.bits }
    }
}

impl BitAndAssign for ProcessSet {
    #[inline]
    fn bitand_assign(&mut self, rhs: Self) {
        self.bits &= rhs.bits;
    }
}

impl Sub for ProcessSet {
    type Output = ProcessSet;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        ProcessSet { bits: self.bits & !rhs.bits }
    }
}

impl SubAssign for ProcessSet {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        self.bits &= !rhs.bits;
    }
}

impl FromIterator<ProcessId> for ProcessSet {
    fn from_iter<I: IntoIterator<Item = ProcessId>>(iter: I) -> Self {
        let mut s = ProcessSet::new();
        for p in iter {
            s.insert(p);
        }
        s
    }
}

impl FromIterator<usize> for ProcessSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        iter.into_iter().map(ProcessId).collect()
    }
}

impl Extend<ProcessId> for ProcessSet {
    fn extend<I: IntoIterator<Item = ProcessId>>(&mut self, iter: I) {
        for p in iter {
            self.insert(p);
        }
    }
}

impl IntoIterator for ProcessSet {
    type Item = ProcessId;
    type IntoIter = Iter;
    fn into_iter(self) -> Iter {
        self.iter()
    }
}

/// Iterator over the members of a [`ProcessSet`], in increasing order.
#[derive(Clone, Debug)]
pub struct Iter {
    bits: u128,
}

impl Iterator for Iter {
    type Item = ProcessId;

    #[inline]
    fn next(&mut self) -> Option<ProcessId> {
        if self.bits == 0 {
            None
        } else {
            let i = self.bits.trailing_zeros() as usize;
            self.bits &= self.bits - 1;
            Some(ProcessId(i))
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.bits.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Iter {}

/// Convenience constructor: `pset![0, 2, 3]`.
#[macro_export]
macro_rules! pset {
    ($($p:expr),* $(,)?) => {
        {
            #[allow(unused_mut)]
            let mut s = $crate::ProcessSet::new();
            $(s.insert($crate::ProcessId($p));)*
            s
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_has_no_members() {
        let s = ProcessSet::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.iter().count(), 0);
        assert_eq!(s.first(), None);
        assert_eq!(s.to_string(), "{}");
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = ProcessSet::new();
        assert!(s.insert(ProcessId(3)));
        assert!(!s.insert(ProcessId(3)));
        assert!(s.contains(ProcessId(3)));
        assert!(!s.contains(ProcessId(2)));
        assert!(s.remove(ProcessId(3)));
        assert!(!s.remove(ProcessId(3)));
        assert!(s.is_empty());
    }

    #[test]
    fn full_covers_exactly_n() {
        let s = ProcessSet::full(5);
        assert_eq!(s.len(), 5);
        assert!(s.contains(ProcessId(4)));
        assert!(!s.contains(ProcessId(5)));
        let all = ProcessSet::full(MAX_PROCESSES);
        assert_eq!(all.len(), MAX_PROCESSES);
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn full_rejects_oversized_universe() {
        let _ = ProcessSet::full(MAX_PROCESSES + 1);
    }

    #[test]
    fn set_algebra() {
        let a = pset![0, 1, 2];
        let b = pset![2, 3];
        assert_eq!(a | b, pset![0, 1, 2, 3]);
        assert_eq!(a & b, pset![2]);
        assert_eq!(a - b, pset![0, 1]);
        assert!(a.intersects(b));
        assert!(pset![0].is_disjoint(pset![1]));
        assert!(pset![1, 2].is_subset(a));
        assert!(!a.is_subset(b));
        assert_eq!(a.complement(5), pset![3, 4]);
    }

    #[test]
    fn iteration_is_sorted() {
        let s = pset![7, 1, 4];
        let v: Vec<usize> = s.iter().map(|p| p.index()).collect();
        assert_eq!(v, vec![1, 4, 7]);
        assert_eq!(s.iter().len(), 3);
        assert_eq!(s.first(), Some(ProcessId(1)));
    }

    #[test]
    fn display_uses_letters_for_small_ids() {
        assert_eq!(pset![0, 1, 3].to_string(), "{a,b,d}");
        assert_eq!(ProcessId(25).to_string(), "z");
        assert_eq!(ProcessId(26).to_string(), "p26");
    }

    #[test]
    fn from_iterator_collects() {
        let s: ProcessSet = vec![ProcessId(2), ProcessId(0)].into_iter().collect();
        assert_eq!(s, pset![0, 2]);
        let t: ProcessSet = (0..4).collect();
        assert_eq!(t, ProcessSet::full(4));
    }

    #[test]
    fn with_and_without_do_not_mutate_original() {
        let s = pset![1];
        assert_eq!(s.with(ProcessId(2)), pset![1, 2]);
        assert_eq!(s.without(ProcessId(1)), pset![]);
        assert_eq!(s, pset![1]);
    }
}
