//! Failure patterns and fail-prone systems (§2 of the paper).
//!
//! A *failure pattern* `f = (P, C)` names the processes that may crash and
//! the channels that may disconnect in a single execution. Channels incident
//! to faulty processes are faulty by default, so `C` only contains channels
//! between correct processes — this well-formedness rule is enforced at
//! construction. A *fail-prone system* `F` is a set of failure patterns.

use std::collections::BTreeSet;
use std::fmt;

use crate::channel::Channel;
use crate::process::{ProcessSet, MAX_PROCESSES};

/// Error produced when constructing an ill-formed [`FailurePattern`] or
/// [`FailProneSystem`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BuildPatternError {
    /// The universe size is zero or exceeds [`MAX_PROCESSES`].
    UniverseOutOfRange {
        /// The offending universe size.
        n: usize,
    },
    /// A faulty process id is `>= n`.
    ProcessOutOfRange {
        /// The universe size.
        n: usize,
        /// The offending faulty set.
        faulty: ProcessSet,
    },
    /// A channel endpoint is `>= n`.
    ChannelOutOfRange {
        /// The universe size.
        n: usize,
        /// The offending channel.
        channel: Channel,
    },
    /// A failing channel touches a faulty process (§2: `C` contains only
    /// channels between correct processes).
    ChannelTouchesFaulty {
        /// The offending channel.
        channel: Channel,
        /// The pattern's faulty set.
        faulty: ProcessSet,
    },
    /// Patterns of a fail-prone system disagree on the universe size.
    MixedUniverses {
        /// The system's universe size.
        expected: usize,
        /// The pattern's universe size.
        found: usize,
    },
}

impl fmt::Display for BuildPatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildPatternError::UniverseOutOfRange { n } => {
                write!(f, "universe size {n} is not in 1..={MAX_PROCESSES}")
            }
            BuildPatternError::ProcessOutOfRange { n, faulty } => {
                write!(f, "faulty set {faulty} mentions processes outside 0..{n}")
            }
            BuildPatternError::ChannelOutOfRange { n, channel } => {
                write!(f, "channel {channel} mentions processes outside 0..{n}")
            }
            BuildPatternError::ChannelTouchesFaulty { channel, faulty } => {
                write!(
                    f,
                    "failing channel {channel} touches the faulty set {faulty}; channels \
                     incident to faulty processes are faulty by default and must not be listed"
                )
            }
            BuildPatternError::MixedUniverses { expected, found } => {
                write!(
                    f,
                    "failure pattern over {found} processes added to a system over {expected}"
                )
            }
        }
    }
}

impl std::error::Error for BuildPatternError {}

/// A failure pattern `f = (P, C)`: processes that may crash and channels
/// (between correct processes) that may disconnect in one execution.
///
/// # Examples
///
/// Figure 1's pattern `f1`: process `d` may crash, channels `(a,c)`,
/// `(b,c)`, `(c,b)` may disconnect.
///
/// ```
/// use gqs_core::{chan, pset, FailurePattern};
/// let f1 = FailurePattern::new(4, pset![3], [chan!(0, 2), chan!(1, 2), chan!(2, 1)])?;
/// assert_eq!(f1.correct(), pset![0, 1, 2]);
/// # Ok::<(), gqs_core::BuildPatternError>(())
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FailurePattern {
    n: usize,
    faulty: ProcessSet,
    channels: BTreeSet<Channel>,
}

impl FailurePattern {
    /// Creates the pattern `(faulty, channels)` over a universe of `n`
    /// processes.
    ///
    /// # Errors
    ///
    /// Returns an error if the universe size is out of range, a faulty
    /// process or channel endpoint is out of range, or a failing channel
    /// touches a faulty process (§2 well-formedness).
    pub fn new<I>(n: usize, faulty: ProcessSet, channels: I) -> Result<Self, BuildPatternError>
    where
        I: IntoIterator<Item = Channel>,
    {
        if n == 0 || n > MAX_PROCESSES {
            return Err(BuildPatternError::UniverseOutOfRange { n });
        }
        if !faulty.is_subset(ProcessSet::full(n)) {
            return Err(BuildPatternError::ProcessOutOfRange { n, faulty });
        }
        let mut chs = BTreeSet::new();
        for ch in channels {
            if ch.from.index() >= n || ch.to.index() >= n {
                return Err(BuildPatternError::ChannelOutOfRange { n, channel: ch });
            }
            if ch.touches(faulty) {
                return Err(BuildPatternError::ChannelTouchesFaulty { channel: ch, faulty });
            }
            chs.insert(ch);
        }
        Ok(FailurePattern { n, faulty, channels: chs })
    }

    /// A crash-only pattern (no channel failures), e.g. the classical model.
    ///
    /// # Errors
    ///
    /// Same range checks as [`FailurePattern::new`].
    pub fn crash_only(n: usize, faulty: ProcessSet) -> Result<Self, BuildPatternError> {
        Self::new(n, faulty, [])
    }

    /// The failure-free pattern over `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range (this constructor cannot otherwise fail).
    pub fn failure_free(n: usize) -> Self {
        Self::new(n, ProcessSet::new(), []).expect("universe size out of range")
    }

    /// Universe size `n`.
    pub fn universe(&self) -> usize {
        self.n
    }

    /// The processes that may crash (`P`).
    pub fn faulty(&self) -> ProcessSet {
        self.faulty
    }

    /// The processes correct according to this pattern (`P \ faulty`).
    pub fn correct(&self) -> ProcessSet {
        self.faulty.complement(self.n)
    }

    /// The channels that may disconnect (`C`), excluding those incident to
    /// faulty processes (which fail implicitly).
    pub fn channels(&self) -> impl Iterator<Item = Channel> + '_ {
        self.channels.iter().copied()
    }

    /// Number of explicitly failing channels.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Whether this pattern allows no failures at all.
    pub fn is_failure_free(&self) -> bool {
        self.faulty.is_empty() && self.channels.is_empty()
    }

    /// Whether `other` allows at most the failures this pattern allows
    /// (pointwise subset on both components).
    pub fn covers(&self, other: &FailurePattern) -> bool {
        self.n == other.n
            && other.faulty.is_subset(self.faulty)
            && other.channels.iter().all(|ch| {
                // A channel failing in `other` is covered if it fails
                // explicitly here or touches a process faulty here.
                self.channels.contains(ch) || ch.touches(self.faulty)
            })
    }

    /// Returns a copy with one more failing channel.
    ///
    /// # Errors
    ///
    /// Same well-formedness checks as [`FailurePattern::new`].
    pub fn with_channel(&self, ch: Channel) -> Result<Self, BuildPatternError> {
        Self::new(self.n, self.faulty, self.channels().chain([ch]))
    }
}

impl fmt::Display for FailurePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {{", self.faulty)?;
        for (i, ch) in self.channels.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{ch}")?;
        }
        write!(f, "}})")
    }
}

/// A fail-prone system `F`: the set of failure patterns an execution may
/// follow.
///
/// # Examples
///
/// The classical minority-crash model of Example 4:
///
/// ```
/// use gqs_core::FailProneSystem;
/// let fm = FailProneSystem::threshold(5, 2).unwrap();
/// assert!(fm.patterns().all(|f| f.channel_count() == 0));
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FailProneSystem {
    n: usize,
    patterns: Vec<FailurePattern>,
}

impl FailProneSystem {
    /// Creates a fail-prone system from explicit patterns.
    ///
    /// # Errors
    ///
    /// Returns an error if the pattern list is empty is not required — an
    /// empty `F` is legal (no execution constraints) — but mixed universe
    /// sizes are rejected.
    pub fn new<I>(n: usize, patterns: I) -> Result<Self, BuildPatternError>
    where
        I: IntoIterator<Item = FailurePattern>,
    {
        if n == 0 || n > MAX_PROCESSES {
            return Err(BuildPatternError::UniverseOutOfRange { n });
        }
        let patterns: Vec<FailurePattern> = patterns.into_iter().collect();
        for p in &patterns {
            if p.universe() != n {
                return Err(BuildPatternError::MixedUniverses { expected: n, found: p.universe() });
            }
        }
        Ok(FailProneSystem { n, patterns })
    }

    /// The classical threshold model `F_M` of Example 4: any set of at most
    /// `k` processes may crash; channels between correct processes are
    /// reliable. Enumerates only the **maximal** patterns (`|P| = k`),
    /// which is equivalent for every solvability question because smaller
    /// patterns are covered by larger ones.
    ///
    /// # Errors
    ///
    /// Returns an error if `k >= n` or the universe size is out of range.
    pub fn threshold(n: usize, k: usize) -> Result<Self, BuildPatternError> {
        if n == 0 || n > MAX_PROCESSES {
            return Err(BuildPatternError::UniverseOutOfRange { n });
        }
        if k >= n {
            return Err(BuildPatternError::ProcessOutOfRange { n, faulty: ProcessSet::full(n) });
        }
        let mut patterns = Vec::new();
        let mut current = ProcessSet::new();
        subsets_of_size(n, k, 0, &mut current, &mut patterns);
        let patterns = patterns
            .into_iter()
            .map(|s| FailurePattern::crash_only(n, s).expect("subsets are in range"))
            .collect();
        Ok(FailProneSystem { n, patterns })
    }

    /// Universe size `n`.
    pub fn universe(&self) -> usize {
        self.n
    }

    /// Number of patterns.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// Whether the system has no patterns.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// Iterates over the patterns.
    pub fn patterns(&self) -> impl Iterator<Item = &FailurePattern> {
        self.patterns.iter()
    }

    /// The `i`-th pattern.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn pattern(&self, i: usize) -> &FailurePattern {
        &self.patterns[i]
    }

    /// Whether no pattern allows channel failures between correct
    /// processes (the precondition of the classical Definition 1).
    pub fn is_crash_only(&self) -> bool {
        self.patterns.iter().all(|p| p.channel_count() == 0)
    }

    /// Returns the system restricted to its **maximal** patterns: those
    /// not covered by another pattern of the system.
    ///
    /// Covered patterns are redundant for every solvability question: if
    /// `f` covers `f'`, then `G \ f` is a subgraph of `G \ f'` with the
    /// same or more removals, so any quorums validating Availability for
    /// `f` also validate it for `f'`. Normalizing can shrink the search
    /// space of the decision procedures substantially (e.g. the threshold
    /// system with all subsets of size ≤ k reduces to the `C(n, k)`
    /// maximal ones).
    pub fn normalize(&self) -> FailProneSystem {
        let mut keep: Vec<FailurePattern> = Vec::new();
        for (i, p) in self.patterns.iter().enumerate() {
            let dominated = self.patterns.iter().enumerate().any(|(j, q)| {
                // Strictly-covering patterns dominate; among equals keep
                // the first occurrence.
                j != i && q.covers(p) && (!p.covers(q) || j < i)
            });
            if !dominated {
                keep.push(p.clone());
            }
        }
        FailProneSystem { n: self.n, patterns: keep }
    }

    /// Appends a pattern.
    ///
    /// # Errors
    ///
    /// Rejects patterns over a different universe size.
    pub fn push(&mut self, pattern: FailurePattern) -> Result<(), BuildPatternError> {
        if pattern.universe() != self.n {
            return Err(BuildPatternError::MixedUniverses {
                expected: self.n,
                found: pattern.universe(),
            });
        }
        self.patterns.push(pattern);
        Ok(())
    }
}

impl fmt::Display for FailProneSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F = {{")?;
        for (i, p) in self.patterns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

fn subsets_of_size(
    n: usize,
    k: usize,
    start: usize,
    current: &mut ProcessSet,
    out: &mut Vec<ProcessSet>,
) {
    if current.len() == k {
        out.push(*current);
        return;
    }
    for i in start..n {
        current.insert(crate::ProcessId(i));
        subsets_of_size(n, k, i + 1, current, out);
        current.remove(crate::ProcessId(i));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{chan, pset};

    #[test]
    fn well_formed_pattern() {
        let f = FailurePattern::new(4, pset![3], [chan!(0, 2), chan!(2, 1)]).unwrap();
        assert_eq!(f.universe(), 4);
        assert_eq!(f.faulty(), pset![3]);
        assert_eq!(f.correct(), pset![0, 1, 2]);
        assert_eq!(f.channel_count(), 2);
        assert!(!f.is_failure_free());
    }

    #[test]
    fn channel_touching_faulty_rejected() {
        let err = FailurePattern::new(4, pset![3], [chan!(0, 3)]).unwrap_err();
        assert!(matches!(err, BuildPatternError::ChannelTouchesFaulty { .. }));
        assert!(err.to_string().contains("faulty"));
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(matches!(
            FailurePattern::new(2, pset![5], []),
            Err(BuildPatternError::ProcessOutOfRange { .. })
        ));
        assert!(matches!(
            FailurePattern::new(2, pset![], [chan!(0, 5)]),
            Err(BuildPatternError::ChannelOutOfRange { .. })
        ));
        assert!(matches!(
            FailurePattern::new(0, pset![], []),
            Err(BuildPatternError::UniverseOutOfRange { .. })
        ));
    }

    #[test]
    fn failure_free_pattern() {
        let f = FailurePattern::failure_free(3);
        assert!(f.is_failure_free());
        assert_eq!(f.correct(), pset![0, 1, 2]);
    }

    #[test]
    fn covers_is_pointwise() {
        let big = FailurePattern::new(4, pset![3], [chan!(0, 2)]).unwrap();
        let small = FailurePattern::crash_only(4, pset![3]).unwrap();
        let other = FailurePattern::crash_only(4, pset![2]).unwrap();
        assert!(big.covers(&small));
        assert!(big.covers(&big));
        assert!(!small.covers(&big));
        assert!(!big.covers(&other));
    }

    #[test]
    fn covers_accounts_for_implicit_channel_failures() {
        // `big` crashes d; a pattern failing channel (a,d)... cannot even be
        // built (well-formedness). Instead: big crashes {2}; other fails (0,1)
        // with 2 correct. big does not cover other's channel unless 0 or 1
        // faulty in big.
        let big = FailurePattern::crash_only(4, pset![0, 2]).unwrap();
        let other = FailurePattern::new(4, pset![2], [chan!(0, 1)]).unwrap();
        // (0,1) touches big.faulty = {0,2} via 0, so it is implicitly faulty.
        assert!(big.covers(&other));
    }

    #[test]
    fn threshold_enumerates_maximal_patterns() {
        let fm = FailProneSystem::threshold(5, 2).unwrap();
        assert_eq!(fm.len(), 10); // C(5,2)
        assert!(fm.is_crash_only());
        assert!(fm.patterns().all(|p| p.faulty().len() == 2));
    }

    #[test]
    fn threshold_zero_is_failure_free() {
        let fm = FailProneSystem::threshold(3, 0).unwrap();
        assert_eq!(fm.len(), 1);
        assert!(fm.pattern(0).is_failure_free());
    }

    #[test]
    fn threshold_rejects_all_faulty() {
        assert!(FailProneSystem::threshold(3, 3).is_err());
    }

    #[test]
    fn mixed_universes_rejected() {
        let f3 = FailurePattern::failure_free(3);
        let err = FailProneSystem::new(4, [f3]).unwrap_err();
        assert!(matches!(err, BuildPatternError::MixedUniverses { .. }));
    }

    #[test]
    fn push_checks_universe() {
        let mut fp = FailProneSystem::new(3, []).unwrap();
        assert!(fp.is_empty());
        fp.push(FailurePattern::failure_free(3)).unwrap();
        assert_eq!(fp.len(), 1);
        assert!(fp.push(FailurePattern::failure_free(4)).is_err());
    }

    #[test]
    fn normalize_drops_covered_patterns() {
        let big = FailurePattern::new(4, pset![3], [chan!(0, 2)]).unwrap();
        let small = FailurePattern::crash_only(4, pset![3]).unwrap();
        let other = FailurePattern::crash_only(4, pset![1]).unwrap();
        let fp = FailProneSystem::new(4, [small.clone(), big.clone(), other.clone()]).unwrap();
        let norm = fp.normalize();
        assert_eq!(norm.len(), 2);
        assert!(norm.patterns().any(|p| p == &big));
        assert!(norm.patterns().any(|p| p == &other));
        assert!(!norm.patterns().any(|p| p == &small));
    }

    #[test]
    fn normalize_keeps_one_of_equal_patterns() {
        let p = FailurePattern::crash_only(3, pset![0]).unwrap();
        let fp = FailProneSystem::new(3, [p.clone(), p.clone()]).unwrap();
        assert_eq!(fp.normalize().len(), 1);
    }

    #[test]
    fn normalize_of_threshold_is_identity() {
        let fp = FailProneSystem::threshold(5, 2).unwrap();
        assert_eq!(fp.normalize().len(), fp.len());
    }

    #[test]
    fn display_is_readable() {
        let f = FailurePattern::new(4, pset![3], [chan!(0, 2)]).unwrap();
        assert_eq!(f.to_string(), "({d}, {(a,c)})");
    }
}
