//! Decision procedures: does a fail-prone system admit a generalized
//! quorum system (Theorem 2's condition), a `QS+`, or a classical quorum
//! system?
//!
//! # Completeness of the search
//!
//! For each failure pattern `f`, any write quorum validating Availability
//! is an `f`-available set, hence contained in some strongly connected
//! component `S_f` of `G \ f`; and any read quorum from which it is
//! reachable is contained in `reach(S_f) = { q : q reaches S_f }`. Replacing
//! the original quorums by these *maximal* candidates only inflates every
//! pairwise intersection, so:
//!
//! > A GQS exists **iff** one can choose, for every pattern `f`, one SCC
//! > `S_f` of `G \ f` such that `reach(S_f) ∩ S_g ≠ ∅` for all patterns
//! > `f, g`.
//!
//! This reduces existence to a finite constraint-satisfaction problem over
//! one SCC choice per pattern. The same argument with `R_f = W_f = S_f`
//! settles `QS+` existence, and with `R_f = W_f = correct(f)` the classical
//! case.
//!
//! # How the CSP is solved
//!
//! The solver compiles the per-pattern candidate lists once, then searches:
//!
//! 1. **Dedup** — patterns with *identical* candidate lists are collapsed
//!    into one CSP variable. This is complete: if a solution assigns
//!    candidates `a ≠ b` to two patterns with the same list, assigning `a`
//!    to both is also a solution (`a` was already checked against every
//!    other chosen candidate, and `read ⊇ write` makes self-pairs
//!    consistent). Randomized sweeps produce many coincident patterns, so
//!    this routinely shrinks the search space.
//! 2. **Compatibility bitmatrix** — pairwise compatibility
//!    (`read_a ∩ write_b ≠ ∅ ∧ read_b ∩ write_a ≠ ∅`) is evaluated once
//!    per candidate pair and stored as one bitmask per (candidate,
//!    variable): bit `k` says "compatible with variable `v`'s `k`-th
//!    candidate". Candidate lists have at most
//!    [`MAX_PROCESSES`](crate::process::MAX_PROCESSES) entries (one per
//!    SCC), so a mask is a short run of `u64` words — the word count is
//!    sized per instance from the longest candidate list (one word for
//!    the common `≤ 64`-candidate case, more only when a pattern really
//!    has hundreds of SCCs).
//! 3. **Forward checking** — the search keeps a live domain mask per
//!    variable. Assigning a candidate intersects every open domain with
//!    the candidate's precomputed mask (one `AND` per variable — no
//!    intersection tests inside the tree), backtracking as soon as a
//!    domain empties, and always branching on the smallest open domain
//!    (dynamic fail-first).
//!
//! Total work is `O(G²)` bit-ops for compilation (`G` = total candidates)
//! plus the (heavily pruned) search; the naive pre-optimization solver is
//! kept in [`crate::reference`] as an oracle and perf baseline.

use crate::failure::FailProneSystem;
use crate::graph::NetworkGraph;
use crate::process::ProcessSet;
use crate::quorum::{GeneralizedQuorumSystem, QsPlus, QuorumFamily};

/// One candidate per failure pattern: a strongly connected component used
/// as write quorum, and the maximal read quorum that reaches it.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
struct Candidate {
    /// The SCC, used as the write quorum.
    write: ProcessSet,
    /// All correct processes that reach every member of the SCC
    /// (superset of the SCC itself).
    read: ProcessSet,
}

/// The result of a successful GQS search: the chosen quorums, pattern by
/// pattern, and the assembled (validated) quorum system.
#[derive(Clone, Debug)]
pub struct GqsWitness {
    /// For each pattern index, the chosen `(R_f, W_f)`.
    pub per_pattern: Vec<(ProcessSet, ProcessSet)>,
    /// The validated generalized quorum system built from the choices.
    pub system: GeneralizedQuorumSystem,
}

/// Decides whether `(graph, fail_prone)` admits a generalized quorum
/// system, returning a witness if so.
///
/// The search is exact (sound and complete — see the module docs), so a
/// `None` answer certifies, by Theorem 2, that **no** obstruction-free
/// implementation of registers, snapshots or lattice agreement exists for
/// this fail-prone system, anywhere.
///
/// # Examples
///
/// ```
/// use gqs_core::systems::figure1;
/// use gqs_core::finder::find_gqs;
/// let fig = figure1();
/// assert!(find_gqs(&fig.graph, &fig.fail_prone).is_some());
/// ```
pub fn find_gqs(graph: &NetworkGraph, fail_prone: &FailProneSystem) -> Option<GqsWitness> {
    let candidates = candidates_per_pattern(graph, fail_prone);
    let choice = solve(&candidates)?;
    let per_pattern: Vec<(ProcessSet, ProcessSet)> = choice
        .iter()
        .enumerate()
        .map(|(i, &c)| (candidates[i][c].read, candidates[i][c].write))
        .collect();
    let mut reads: Vec<ProcessSet> = per_pattern.iter().map(|(r, _)| *r).collect();
    let mut writes: Vec<ProcessSet> = per_pattern.iter().map(|(_, w)| *w).collect();
    reads.sort_unstable();
    reads.dedup();
    writes.sort_unstable();
    writes.dedup();
    let system = GeneralizedQuorumSystem::new(
        graph.clone(),
        fail_prone.clone(),
        QuorumFamily::explicit(reads).expect("nonempty by construction"),
        QuorumFamily::explicit(writes).expect("nonempty by construction"),
    )
    .expect("the solver's pairwise checks imply validity");
    Some(GqsWitness { per_pattern, system })
}

/// Decides GQS existence without building the witness (slightly cheaper;
/// used in sweeps).
pub fn gqs_exists(graph: &NetworkGraph, fail_prone: &FailProneSystem) -> bool {
    let candidates = candidates_per_pattern(graph, fail_prone);
    solve(&candidates).is_some()
}

/// Decides whether `(graph, fail_prone)` admits a `QS+` (the §1 strawman:
/// available read and write quorums strongly connected together), returning
/// the per-pattern SCC choices if so.
///
/// Since any `QS+` witness has `R_f ∪ W_f` inside one SCC `S_f`, and
/// enlarging both to `S_f` preserves Consistency and Availability, `QS+`
/// exists iff one SCC per pattern can be chosen with pairwise
/// intersections.
pub fn find_qs_plus(graph: &NetworkGraph, fail_prone: &FailProneSystem) -> Option<QsPlus> {
    let candidates: Vec<Vec<Candidate>> = fail_prone
        .patterns()
        .map(|f| {
            graph
                .residual(f)
                .sccs()
                .into_iter()
                .map(|scc| Candidate { write: scc, read: scc })
                .collect()
        })
        .collect();
    let choice = solve(&candidates)?;
    let mut quorums: Vec<ProcessSet> =
        choice.iter().enumerate().map(|(i, &c)| candidates[i][c].write).collect();
    quorums.sort_unstable();
    quorums.dedup();
    let family = QuorumFamily::explicit(quorums).expect("nonempty");
    Some(
        QsPlus::new(graph.clone(), fail_prone.clone(), family.clone(), family)
            .expect("solver guarantees validity"),
    )
}

/// Decides `QS+` existence without building the witness.
pub fn qs_plus_exists(graph: &NetworkGraph, fail_prone: &FailProneSystem) -> bool {
    find_qs_plus(graph, fail_prone).is_some()
}

/// Decides whether a **crash-only** fail-prone system admits a classical
/// quorum system (Definition 1): taking maximal correct sets as quorums,
/// this holds iff no two patterns jointly cover all processes.
///
/// Returns `None` if the system allows channel failures (Definition 1 does
/// not apply), `Some(bool)` otherwise.
pub fn classical_qs_exists(fail_prone: &FailProneSystem) -> Option<bool> {
    if !fail_prone.is_crash_only() {
        return None;
    }
    let n = fail_prone.universe();
    let correct: Vec<ProcessSet> = fail_prone.patterns().map(|f| f.correct()).collect();
    for r in &correct {
        for w in &correct {
            if r.is_disjoint(*w) {
                return Some(false);
            }
        }
        if r.is_empty() {
            return Some(false);
        }
    }
    // An empty fail-prone system imposes no constraints; quorums must still
    // be nonempty, which full(n) satisfies.
    let _ = n;
    Some(true)
}

/// Searches for a **threshold** generalized quorum system: reads = all
/// sets of at least `r` processes, writes = all sets of at least `w`,
/// with `r + w > n` for Consistency. Returns the first valid pair in
/// order of growing `w` then `r` (small write quorums preferred, as in
/// Example 6's trade-off).
///
/// Threshold families are attractive operationally (no explicit quorum
/// lists), but strictly weaker than free-form families: some systems
/// admit only irregular quorums. Figure 1, interestingly, admits the
/// threshold pair `(r, w) = (3, 2)`.
pub fn find_threshold_gqs(
    graph: &NetworkGraph,
    fail_prone: &FailProneSystem,
) -> Option<GeneralizedQuorumSystem> {
    let n = graph.len();
    for w in 1..=n {
        for r in (n + 1 - w).max(1)..=n {
            let reads = QuorumFamily::threshold(n, r).expect("in range");
            let writes = QuorumFamily::threshold(n, w).expect("in range");
            if let Ok(sys) =
                GeneralizedQuorumSystem::new(graph.clone(), fail_prone.clone(), reads, writes)
            {
                return Some(sys);
            }
        }
    }
    None
}

/// Why a fail-prone system admits no generalized quorum system.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Unsolvability {
    /// A pattern leaves no correct process at all: no write quorum can
    /// ever be available under it.
    DeadPattern {
        /// Index of the pattern.
        pattern: usize,
    },
    /// Two patterns admit no pairwise-compatible quorum choice: under
    /// `a`'s connectivity nothing can both reach `b`'s candidates and be
    /// reached by them (a 2-pattern unsolvability core).
    ConflictingPair {
        /// Index of the first pattern.
        a: usize,
        /// Index of the second pattern.
        b: usize,
    },
    /// Every pair is locally compatible but no global choice exists —
    /// the conflict involves three or more patterns (Example 9's `F'` is
    /// of this kind).
    Global,
}

impl std::fmt::Display for Unsolvability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Unsolvability::DeadPattern { pattern } => {
                write!(f, "pattern #{pattern} leaves no correct processes")
            }
            Unsolvability::ConflictingPair { a, b } => {
                write!(f, "patterns #{a} and #{b} admit no compatible quorum choice")
            }
            Unsolvability::Global => {
                write!(f, "no two patterns conflict alone; the obstruction involves ≥3 patterns")
            }
        }
    }
}

/// Diagnoses why no GQS exists; returns `None` if one does.
///
/// The diagnosis is a coarse core: first a pattern with no candidates,
/// then the first locally-inconsistent pair, otherwise a global verdict.
pub fn explain_unsolvable(
    graph: &NetworkGraph,
    fail_prone: &FailProneSystem,
) -> Option<Unsolvability> {
    let candidates = candidates_per_pattern(graph, fail_prone);
    if candidates.is_empty() {
        return None;
    }
    if let Some(i) = candidates.iter().position(|c| c.is_empty()) {
        return Some(Unsolvability::DeadPattern { pattern: i });
    }
    let csp = Csp::compile(&candidates);
    if csp.search().is_some() {
        return None;
    }
    let m = candidates.len();
    for (a, list_a) in candidates.iter().enumerate() {
        for b in a + 1..m {
            let (va, vb) = (csp.var_of_pattern[a], csp.var_of_pattern[b]);
            if va == vb {
                // Identical candidate lists: assigning the same candidate
                // to both is always pairwise-consistent (read ⊇ write).
                continue;
            }
            let pair_ok = (0..list_a.len()).any(|ca| csp.mask_nonempty(va, ca, vb));
            if !pair_ok {
                return Some(Unsolvability::ConflictingPair { a, b });
            }
        }
    }
    Some(Unsolvability::Global)
}

fn candidates_per_pattern(
    graph: &NetworkGraph,
    fail_prone: &FailProneSystem,
) -> Vec<Vec<Candidate>> {
    fail_prone
        .patterns()
        .map(|f| {
            let res = graph.residual(f);
            res.sccs()
                .into_iter()
                .map(|scc| Candidate { write: scc, read: res.reach_to_all(scc) })
                .collect()
        })
        .collect()
}

/// Pairwise compatibility: both chosen candidates' reads must intersect
/// the other's write (`read ⊇ write` makes self-pairs consistent).
///
/// Restricted to the low `nw` backing words — exact when every candidate
/// set lives within those words (see [`Csp::compile`]), and much cheaper
/// than a full-width test on the `O(G²)` compile loop.
#[inline]
fn compatible_low(a: &Candidate, b: &Candidate, nw: usize) -> bool {
    let intersects_low = |x: &ProcessSet, y: &ProcessSet| {
        let (xw, yw) = (x.as_words(), y.as_words());
        let mut acc = 0u64;
        for i in 0..nw {
            acc |= xw[i] & yw[i];
        }
        acc != 0
    };
    intersects_low(&a.read, &b.write) && intersects_low(&b.read, &a.write)
}

/// The compiled CSP: deduped variables, a flattened candidate numbering,
/// and the precomputed compatibility bitmatrix (see the module docs).
///
/// All candidate masks (domains, compatibility rows, trail entries) are
/// runs of `mw` consecutive `u64` words, where `mw` is sized from the
/// longest candidate list of the instance — so systems whose patterns have
/// more than 64 (or 128) SCCs are handled with the same code path as the
/// single-word common case.
struct Csp<'a> {
    /// One candidate list per deduped variable (borrowed from the caller).
    vars: Vec<&'a [Candidate]>,
    /// Pattern index → variable index.
    var_of_pattern: Vec<usize>,
    /// Variable index → offset into the global candidate numbering.
    offsets: Vec<usize>,
    /// Words per candidate mask: `⌈max candidate-list length / 64⌉`.
    mw: usize,
    /// `compat[((g * vars.len()) + v) * mw ..][..mw]` = bitmask over
    /// variable `v`'s candidates compatible with global candidate `g`.
    compat: Vec<u64>,
}

/// Upper bound on `mw`: candidate lists have one entry per SCC, and there
/// are at most `MAX_PROCESSES` SCCs.
const MASK_WORDS_MAX: usize = crate::process::ProcessSet::WORDS;

/// Sets the low `len` bits of `mask` (one bit per candidate of a
/// variable), clearing the rest.
#[inline]
fn fill_low_bits(mask: &mut [u64], len: usize) {
    let (full, rem) = (len / 64, len % 64);
    for (i, w) in mask.iter_mut().enumerate() {
        *w = if i < full {
            u64::MAX
        } else if i == full && rem != 0 {
            (1u64 << rem) - 1
        } else {
            0
        };
    }
}

impl<'a> Csp<'a> {
    /// Compiles the per-pattern candidate lists: dedup, flatten, and fill
    /// the compatibility matrix.
    fn compile(candidates: &'a [Vec<Candidate>]) -> Csp<'a> {
        let mut vars: Vec<&'a [Candidate]> = Vec::new();
        let mut var_of_pattern = Vec::with_capacity(candidates.len());
        for list in candidates {
            let v = match vars.iter().position(|seen| *seen == list.as_slice()) {
                Some(v) => v,
                None => {
                    vars.push(list.as_slice());
                    vars.len() - 1
                }
            };
            var_of_pattern.push(v);
        }
        let mut offsets = Vec::with_capacity(vars.len());
        let mut total = 0usize;
        for v in &vars {
            offsets.push(total);
            total += v.len();
        }
        let nvars = vars.len();
        let max_len = vars.iter().map(|v| v.len()).max().unwrap_or(0).max(1);
        let mw = max_len.div_ceil(64);
        debug_assert!(mw <= MASK_WORDS_MAX, "at most one SCC candidate per process");
        // All candidate sets live in the low words of their universe;
        // restrict the O(G²) pairwise checks to the words actually used.
        let used = vars
            .iter()
            .flat_map(|v| v.iter())
            .flat_map(|c| [c.read, c.write])
            .fold(0usize, |hi, s| {
                let w = s.as_words();
                hi.max((0..w.len()).rev().find(|&i| w[i] != 0).map_or(0, |i| i + 1))
            })
            .max(1);
        let mut compat = vec![0u64; total * nvars * mw];
        for (a, va) in vars.iter().enumerate() {
            for (ca, cand_a) in va.iter().enumerate() {
                let g = offsets[a] + ca;
                for (b, vb) in vars.iter().enumerate() {
                    let row = &mut compat[(g * nvars + b) * mw..][..mw];
                    for (cb, cand_b) in vb.iter().enumerate() {
                        if compatible_low(cand_a, cand_b, used) {
                            row[cb / 64] |= 1u64 << (cb % 64);
                        }
                    }
                }
            }
        }
        Csp { vars, var_of_pattern, offsets, mw, compat }
    }

    /// The compatibility mask (a `mw`-word run) of variable `v`'s
    /// candidate `c` against variable `u`'s candidates.
    #[inline]
    fn mask(&self, v: usize, c: usize, u: usize) -> &[u64] {
        let base = ((self.offsets[v] + c) * self.vars.len() + u) * self.mw;
        &self.compat[base..base + self.mw]
    }

    /// Whether any candidate of variable `u` is compatible with variable
    /// `v`'s candidate `c`.
    #[inline]
    fn mask_nonempty(&self, v: usize, c: usize, u: usize) -> bool {
        self.mask(v, c, u).iter().any(|&w| w != 0)
    }

    /// Forward-checking search over domain bitmasks; returns one candidate
    /// choice per variable.
    fn search(&self) -> Option<Vec<usize>> {
        let (nvars, mw) = (self.vars.len(), self.mw);
        let mut domains = vec![0u64; nvars * mw];
        for (v, var) in self.vars.iter().enumerate() {
            fill_low_bits(&mut domains[v * mw..(v + 1) * mw], var.len());
            if var.is_empty() {
                return None;
            }
        }
        let mut chosen = vec![usize::MAX; nvars];
        let mut open: Vec<usize> = (0..nvars).collect();
        // The undo trail: variable indices plus their saved `mw`-word
        // domains, in two parallel flat vectors (no per-node allocation).
        let mut trail_vars: Vec<usize> = Vec::with_capacity(nvars);
        let mut trail_words: Vec<u64> = Vec::with_capacity(nvars * mw);
        if self.assign_next(&mut domains, &mut chosen, &mut open, &mut trail_vars, &mut trail_words)
        {
            Some(chosen)
        } else {
            None
        }
    }

    fn assign_next(
        &self,
        domains: &mut [u64],
        chosen: &mut [usize],
        open: &mut Vec<usize>,
        trail_vars: &mut Vec<usize>,
        trail_words: &mut Vec<u64>,
    ) -> bool {
        let mw = self.mw;
        // Dynamic fail-first: branch on the smallest open domain.
        let Some(pos) = (0..open.len()).min_by_key(|&i| {
            let v = open[i];
            domains[v * mw..(v + 1) * mw].iter().map(|w| w.count_ones()).sum::<u32>()
        }) else {
            return true; // all variables assigned
        };
        let v = open.swap_remove(pos);
        let mut dom = [0u64; MASK_WORDS_MAX];
        dom[..mw].copy_from_slice(&domains[v * mw..(v + 1) * mw]);
        let mut wi = 0;
        while wi < mw {
            let w = dom[wi];
            if w == 0 {
                wi += 1;
                continue;
            }
            let c = wi * 64 + w.trailing_zeros() as usize;
            dom[wi] = w & (w - 1);
            // Prune every open domain through the precomputed masks,
            // recording changed entries on the shared trail for undo.
            let mark = trail_vars.len();
            let mut wiped = false;
            for &u in open.iter() {
                let mask = self.mask(v, c, u);
                let du = &domains[u * mw..(u + 1) * mw];
                let mut pruned = [0u64; MASK_WORDS_MAX];
                let mut changed = false;
                let mut nonempty = false;
                for i in 0..mw {
                    let nw = du[i] & mask[i];
                    pruned[i] = nw;
                    changed |= nw != du[i];
                    nonempty |= nw != 0;
                }
                if changed {
                    trail_vars.push(u);
                    trail_words.extend_from_slice(&domains[u * mw..(u + 1) * mw]);
                    domains[u * mw..(u + 1) * mw].copy_from_slice(&pruned[..mw]);
                }
                if !nonempty {
                    wiped = true;
                    break;
                }
            }
            if !wiped {
                chosen[v] = c;
                if self.assign_next(domains, chosen, open, trail_vars, trail_words) {
                    return true;
                }
            }
            while trail_vars.len() > mark {
                let u = trail_vars.pop().expect("trail entries above mark");
                let start = trail_words.len() - mw;
                domains[u * mw..(u + 1) * mw].copy_from_slice(&trail_words[start..]);
                trail_words.truncate(start);
            }
        }
        open.push(v);
        false
    }
}

/// CSP solver: pick one candidate per pattern such that for every ordered
/// pair `(i, j)` of chosen candidates, `read_i ∩ write_j ≠ ∅`. Compiles
/// the instance (dedup + compatibility bitmatrix), then runs forward
/// checking over domain masks — see the module docs for the design.
fn solve(candidates: &[Vec<Candidate>]) -> Option<Vec<usize>> {
    if candidates.is_empty() {
        return Some(Vec::new());
    }
    if candidates.iter().any(|c| c.is_empty()) {
        // A pattern with no correct processes at all: no availability.
        return None;
    }
    let csp = Csp::compile(candidates);
    let per_var = csp.search()?;
    Some(csp.var_of_pattern.iter().map(|&v| per_var[v]).collect())
}

/// Exhaustive oracle for tests: tries **every** combination of SCC choices
/// (no pruning, no ordering) and reports whether any satisfies the pairwise
/// condition. Exponential; only for small systems.
pub fn gqs_exists_brute_force(graph: &NetworkGraph, fail_prone: &FailProneSystem) -> bool {
    let candidates = candidates_per_pattern(graph, fail_prone);
    if candidates.iter().any(|c| c.is_empty()) {
        return false;
    }
    let m = candidates.len();
    let mut idx = vec![0usize; m];
    loop {
        let ok = (0..m).all(|i| {
            (0..m).all(|j| candidates[i][idx[i]].read.intersects(candidates[j][idx[j]].write))
        });
        if ok {
            return true;
        }
        // Next combination.
        let mut carry = true;
        for i in 0..m {
            if carry {
                idx[i] += 1;
                if idx[i] == candidates[i].len() {
                    idx[i] = 0;
                } else {
                    carry = false;
                }
            }
        }
        if carry {
            return false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::FailurePattern;
    use crate::{chan, pset};

    #[test]
    fn complete_graph_minority_admits_gqs() {
        for n in [3usize, 4, 5] {
            let k = (n - 1) / 2;
            let g = NetworkGraph::complete(n);
            let fp = FailProneSystem::threshold(n, k).unwrap();
            let w = find_gqs(&g, &fp).expect("classical setting must admit a GQS");
            // The witness validates (checked by construction) and U_f is all
            // correct processes.
            for i in 0..fp.len() {
                assert_eq!(w.system.u_f(i), fp.pattern(i).correct());
            }
        }
    }

    #[test]
    fn complete_graph_half_failures_admit_no_gqs() {
        // n = 2k: two disjoint patterns of k crashes have disjoint correct
        // sets — no quorum system of any kind.
        let g = NetworkGraph::complete(4);
        let fp = FailProneSystem::threshold(4, 2).unwrap();
        assert!(find_gqs(&g, &fp).is_none());
        assert!(!gqs_exists(&g, &fp));
        assert!(!gqs_exists_brute_force(&g, &fp));
    }

    #[test]
    fn unidirectional_ring_single_pattern() {
        // Ring 0 -> 1 -> 2 -> 0 is one SCC: failure-free pattern admits a GQS.
        let g = NetworkGraph::with_channels(3, [chan!(0, 1), chan!(1, 2), chan!(2, 0)]);
        let fp = FailProneSystem::new(3, [FailurePattern::failure_free(3)]).unwrap();
        let w = find_gqs(&g, &fp).unwrap();
        assert_eq!(w.per_pattern[0].1, pset![0, 1, 2]);
    }

    #[test]
    fn disconnected_halves_fail() {
        // Two 1-cycles with no channels between them, one pattern each
        // crashing the other half: reads of one pattern cannot reach writes
        // of the other.
        let g =
            NetworkGraph::with_channels(4, [chan!(0, 1), chan!(1, 0), chan!(2, 3), chan!(3, 2)]);
        let f1 = FailurePattern::crash_only(4, pset![2, 3]).unwrap();
        let f2 = FailurePattern::crash_only(4, pset![0, 1]).unwrap();
        let fp = FailProneSystem::new(4, [f1, f2]).unwrap();
        assert!(!gqs_exists(&g, &fp));
    }

    #[test]
    fn brute_force_agrees_with_solver_on_line_graphs() {
        for n in 2..=4usize {
            let mut channels = Vec::new();
            for i in 0..n - 1 {
                channels.push(chan!(i, i + 1));
            }
            let g = NetworkGraph::with_channels(n, channels);
            for k in 0..n {
                let fp = FailProneSystem::threshold(n, k).unwrap();
                assert_eq!(gqs_exists(&g, &fp), gqs_exists_brute_force(&g, &fp), "n={n} k={k}");
            }
        }
    }

    #[test]
    fn qs_plus_strictly_stronger_than_gqs() {
        // The canonical separation: 0 <-> 1 plus a one-way feed 2 -> 0,
        // with a pattern where nothing else fails.
        let g = NetworkGraph::with_channels(3, [chan!(0, 1), chan!(1, 0), chan!(2, 0)]);
        // Pattern: process 2's *incoming* channels do not exist anyway; no
        // failures. GQS exists; QS+ also exists here (take R = W = {0,1}).
        let fp = FailProneSystem::new(3, [FailurePattern::failure_free(3)]).unwrap();
        assert!(gqs_exists(&g, &fp));
        assert!(qs_plus_exists(&g, &fp));
        // But force the read quorum to include 2 by crashing 1 in a second
        // pattern: now any W for pattern 2 is {0} or {2}; consistency with
        // pattern 1 pushes towards {0}; reads for pattern 1 must contain 0.
        let f2 = FailurePattern::crash_only(3, pset![1]).unwrap();
        let fp2 = FailProneSystem::new(3, [FailurePattern::failure_free(3), f2]).unwrap();
        assert!(gqs_exists(&g, &fp2));
        assert!(qs_plus_exists(&g, &fp2)); // {0} itself is an SCC: still fine
    }

    #[test]
    fn classical_existence_is_pairwise_cover_check() {
        let fp = FailProneSystem::threshold(5, 2).unwrap();
        assert_eq!(classical_qs_exists(&fp), Some(true));
        let fp_bad = FailProneSystem::threshold(4, 2).unwrap();
        assert_eq!(classical_qs_exists(&fp_bad), Some(false));
        let with_channels =
            FailProneSystem::new(3, [FailurePattern::new(3, pset![], [chan!(0, 1)]).unwrap()])
                .unwrap();
        assert_eq!(classical_qs_exists(&with_channels), None);
    }

    #[test]
    fn empty_fail_prone_system_is_trivially_solvable() {
        let g = NetworkGraph::complete(3);
        let fp = FailProneSystem::new(3, []).unwrap();
        // No availability obligations; the solver returns an empty choice,
        // but building an explicit family needs at least one quorum, so the
        // witness construction would fail — `gqs_exists` is the right query.
        assert!(gqs_exists(&g, &fp) || find_gqs(&g, &fp).is_none());
    }

    #[test]
    fn threshold_gqs_exists_for_figure1() {
        // The non-obvious fact computed in E11's analysis: Figure 1 is
        // solvable even with threshold quorums (reads >= 3, writes >= 2).
        let fig = crate::systems::figure1();
        let sys = find_threshold_gqs(&fig.graph, &fig.fail_prone)
            .expect("Figure 1 admits a threshold GQS");
        match (sys.reads(), sys.writes()) {
            (
                crate::QuorumFamily::Threshold { min_size: r, .. },
                crate::QuorumFamily::Threshold { min_size: w, .. },
            ) => {
                assert_eq!((*w, *r), (2, 3));
            }
            other => panic!("expected threshold families, got {other:?}"),
        }
        // And the U_f sets coincide with the free-form ones.
        for i in 0..4 {
            assert_eq!(sys.u_f(i), fig.gqs.u_f(i));
        }
    }

    #[test]
    fn threshold_gqs_absent_for_example9() {
        let (g, fp) = crate::systems::example9_f_prime();
        assert!(find_threshold_gqs(&g, &fp).is_none());
    }

    #[test]
    fn explain_returns_none_on_solvable_systems() {
        let fig = crate::systems::figure1();
        assert_eq!(explain_unsolvable(&fig.graph, &fig.fail_prone), None);
    }

    #[test]
    fn explain_dead_pattern() {
        let g = NetworkGraph::complete(2);
        let f = FailurePattern::crash_only(2, pset![0, 1]).unwrap();
        let fp = FailProneSystem::new(2, [FailurePattern::failure_free(2), f]).unwrap();
        assert_eq!(explain_unsolvable(&g, &fp), Some(Unsolvability::DeadPattern { pattern: 1 }));
    }

    #[test]
    fn explain_conflicting_pair() {
        // Two patterns crashing complementary halves: their candidates can
        // never intersect.
        let g = NetworkGraph::complete(4);
        let f1 = FailurePattern::crash_only(4, pset![2, 3]).unwrap();
        let f2 = FailurePattern::crash_only(4, pset![0, 1]).unwrap();
        let fp = FailProneSystem::new(4, [f1, f2]).unwrap();
        assert_eq!(
            explain_unsolvable(&g, &fp),
            Some(Unsolvability::ConflictingPair { a: 0, b: 1 })
        );
    }

    #[test]
    fn explain_example9_is_a_global_conflict() {
        // Every pair of Example 9's patterns is locally compatible; the
        // obstruction needs at least three patterns — a nice illustration
        // of why the lower-bound proof must build a cross-pattern
        // indistinguishability argument.
        let (g, fp) = crate::systems::example9_f_prime();
        assert_eq!(explain_unsolvable(&g, &fp), Some(Unsolvability::Global));
    }

    #[test]
    fn normalization_preserves_solvability() {
        let fig = crate::systems::figure1();
        // Add covered (redundant) patterns; solvability must not change.
        let mut fp = fig.fail_prone.clone();
        fp.push(FailurePattern::failure_free(4)).unwrap();
        fp.push(FailurePattern::crash_only(4, pset![3]).unwrap()).unwrap();
        assert!(gqs_exists(&fig.graph, &fp));
        let norm = fp.normalize();
        assert_eq!(norm.len(), 4, "covered patterns removed");
        assert_eq!(gqs_exists(&fig.graph, &norm), gqs_exists(&fig.graph, &fp));
    }

    #[test]
    fn all_processes_may_crash_in_some_pattern() {
        let g = NetworkGraph::complete(2);
        let f = FailurePattern::crash_only(2, pset![0, 1]).unwrap();
        let fp = FailProneSystem::new(2, [f]).unwrap();
        assert!(!gqs_exists(&g, &fp));
        assert!(find_gqs(&g, &fp).is_none());
    }
}
