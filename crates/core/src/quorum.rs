//! Quorum systems: classical (Definition 1), generalized (Definition 2) and
//! the strongly-connected strawman `QS+` discussed in §1/§3.
//!
//! A *generalized quorum system* `(F, R, W)` satisfies:
//!
//! * **Consistency** — every read quorum intersects every write quorum;
//! * **Availability** — for every failure pattern `f ∈ F` there exist
//!   `W ∈ W` and `R ∈ R` such that `W` is `f`-available (strongly connected
//!   set of correct processes) and `W` is `f`-reachable from `R`
//!   (unidirectional!).
//!
//! The paper proves this is *exactly* the condition under which MWMR atomic
//! registers, SWMR snapshots, lattice agreement and partially synchronous
//! consensus are implementable (Theorems 1, 2, 5, 6).

use std::fmt;

use crate::failure::FailProneSystem;
use crate::graph::{NetworkGraph, ResidualGraph};
use crate::process::ProcessSet;

/// A family of quorums: either an explicit list of process sets or the
/// family of **all** subsets of at least a given size (threshold).
///
/// Threshold families avoid enumerating `C(n, m)` sets and are what the
/// classical constructions of Examples 4 and 6 use.
///
/// # Examples
///
/// ```
/// use gqs_core::{pset, QuorumFamily};
/// let r = QuorumFamily::threshold(5, 3)?;
/// assert!(r.is_satisfied(pset![0, 2, 4]));
/// assert!(!r.is_satisfied(pset![0, 2]));
/// # Ok::<(), gqs_core::QuorumSystemError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum QuorumFamily {
    /// An explicit list of quorums.
    Explicit(Vec<ProcessSet>),
    /// All subsets of `{0..n}` with at least `min_size` members.
    Threshold {
        /// Universe size.
        n: usize,
        /// Minimum quorum size.
        min_size: usize,
    },
}

impl QuorumFamily {
    /// Builds an explicit family.
    ///
    /// The quorums are stored sorted and deduplicated: duplicate entries
    /// carry no information (a family is a *set* of quorums), and the
    /// canonical order lets validation and Consistency checks early-exit
    /// deterministically.
    ///
    /// # Errors
    ///
    /// Rejects empty families and empty quorums (a quorum must contain at
    /// least one process for Consistency to be satisfiable).
    pub fn explicit<I>(quorums: I) -> Result<Self, QuorumSystemError>
    where
        I: IntoIterator<Item = ProcessSet>,
    {
        let mut quorums: Vec<ProcessSet> = quorums.into_iter().collect();
        if quorums.is_empty() {
            return Err(QuorumSystemError::EmptyFamily);
        }
        if let Some(_empty) = quorums.iter().find(|q| q.is_empty()) {
            return Err(QuorumSystemError::EmptyQuorum);
        }
        quorums.sort_unstable();
        quorums.dedup();
        Ok(QuorumFamily::Explicit(quorums))
    }

    /// Builds the threshold family of all subsets of size at least
    /// `min_size`.
    ///
    /// # Errors
    ///
    /// Rejects `min_size == 0` and `min_size > n`.
    pub fn threshold(n: usize, min_size: usize) -> Result<Self, QuorumSystemError> {
        if min_size == 0 || min_size > n {
            return Err(QuorumSystemError::BadThreshold { n, min_size });
        }
        Ok(QuorumFamily::Threshold { n, min_size })
    }

    /// Whether `have` contains some quorum of the family.
    pub fn is_satisfied(&self, have: ProcessSet) -> bool {
        match self {
            QuorumFamily::Explicit(qs) => qs.iter().any(|q| q.is_subset(have)),
            QuorumFamily::Threshold { min_size, .. } => have.len() >= *min_size,
        }
    }

    /// Returns a quorum contained in `have`, if any.
    pub fn satisfying_quorum(&self, have: ProcessSet) -> Option<ProcessSet> {
        match self {
            QuorumFamily::Explicit(qs) => qs.iter().copied().find(|q| q.is_subset(have)),
            QuorumFamily::Threshold { min_size, .. } => {
                if have.len() >= *min_size {
                    Some(have)
                } else {
                    None
                }
            }
        }
    }

    /// Whether `q` is a quorum of this family.
    pub fn contains_quorum(&self, q: ProcessSet) -> bool {
        match self {
            QuorumFamily::Explicit(qs) => qs.contains(&q),
            QuorumFamily::Threshold { n, min_size } => {
                q.len() >= *min_size && q.is_subset(ProcessSet::full(*n))
            }
        }
    }

    /// The explicit quorums, if this is an explicit family.
    pub fn as_explicit(&self) -> Option<&[ProcessSet]> {
        match self {
            QuorumFamily::Explicit(qs) => Some(qs),
            QuorumFamily::Threshold { .. } => None,
        }
    }

    /// All processes mentioned by the family.
    pub fn support(&self) -> ProcessSet {
        match self {
            QuorumFamily::Explicit(qs) => qs.iter().fold(ProcessSet::new(), |acc, q| acc | *q),
            QuorumFamily::Threshold { n, .. } => ProcessSet::full(*n),
        }
    }

    /// Checks Consistency against another family used in the opposite role:
    /// every quorum here must intersect every quorum there.
    ///
    /// # Errors
    ///
    /// Returns a counterexample pair on violation.
    pub fn consistent_with(&self, other: &QuorumFamily) -> Result<(), (ProcessSet, ProcessSet)> {
        match (self, other) {
            (QuorumFamily::Explicit(rs), QuorumFamily::Explicit(ws)) => {
                // Fast path: a process common to every write quorum makes
                // any read containing it intersect all of them, skipping
                // the inner loop.
                let universe = ProcessSet::full(crate::process::MAX_PROCESSES);
                let common_w = ws.iter().fold(universe, |acc, w| acc & *w);
                for r in rs {
                    if r.intersects(common_w) {
                        continue;
                    }
                    for w in ws {
                        if r.is_disjoint(*w) {
                            return Err((*r, *w));
                        }
                    }
                }
                Ok(())
            }
            (
                QuorumFamily::Threshold { n, min_size: mr },
                QuorumFamily::Threshold { n: n2, min_size: mw },
            ) => {
                let n = (*n).max(*n2);
                if mr + mw > n {
                    Ok(())
                } else {
                    // Counterexample: a prefix and a suffix that miss each other.
                    let r: ProcessSet = (0..*mr).collect();
                    let w: ProcessSet = (n - mw..n).collect();
                    Err((r, w))
                }
            }
            (QuorumFamily::Explicit(rs), QuorumFamily::Threshold { n, min_size }) => {
                for r in rs {
                    // r intersects every set of size >= min_size iff its
                    // complement has fewer than min_size members.
                    let co = r.complement(*n);
                    if co.len() >= *min_size {
                        let w: ProcessSet = co.iter().take(*min_size).collect();
                        return Err((*r, w));
                    }
                }
                Ok(())
            }
            (QuorumFamily::Threshold { .. }, QuorumFamily::Explicit(_)) => {
                other.consistent_with(self).map_err(|(w, r)| (r, w))
            }
        }
    }

    /// Candidate *maximal* write quorums of this family that are
    /// `f`-available in `res`.
    ///
    /// For an explicit family these are the `f`-available quorums
    /// themselves. For a threshold family these are the strongly connected
    /// components of size at least `min_size` (every subset of such an SCC
    /// of sufficient size is an available quorum, and the SCC itself is
    /// one, so using the SCC is sound and—because bigger sets reach and
    /// intersect more—complete).
    pub fn available_writes(&self, res: &ResidualGraph) -> Vec<ProcessSet> {
        match self {
            QuorumFamily::Explicit(qs) => {
                qs.iter().copied().filter(|w| res.f_available(*w)).collect()
            }
            QuorumFamily::Threshold { min_size, .. } => {
                res.sccs().into_iter().filter(|s| s.len() >= *min_size).collect()
            }
        }
    }

    /// A read quorum of this family from which `w` is `f`-reachable, if
    /// one exists.
    ///
    /// For threshold families this is the *maximal* candidate: the set of
    /// all alive processes that reach every member of `w`.
    pub fn reaching_read(&self, res: &ResidualGraph, w: ProcessSet) -> Option<ProcessSet> {
        match self {
            QuorumFamily::Explicit(qs) => qs.iter().copied().find(|r| res.f_reachable(w, *r)),
            QuorumFamily::Threshold { min_size, .. } => {
                let candidates = res.reach_to_all(w);
                if candidates.len() >= *min_size {
                    Some(candidates)
                } else {
                    None
                }
            }
        }
    }
}

impl fmt::Display for QuorumFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuorumFamily::Explicit(qs) => {
                write!(f, "{{")?;
                for (i, q) in qs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{q}")?;
                }
                write!(f, "}}")
            }
            QuorumFamily::Threshold { n, min_size } => {
                write!(f, "{{Q ⊆ [0,{n}) : |Q| ≥ {min_size}}}")
            }
        }
    }
}

/// Error produced when validating a quorum system.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum QuorumSystemError {
    /// A family with no quorums.
    EmptyFamily,
    /// A quorum with no members.
    EmptyQuorum,
    /// Threshold parameters out of range.
    BadThreshold {
        /// Universe size.
        n: usize,
        /// Offending minimum size.
        min_size: usize,
    },
    /// A quorum mentions processes outside the graph.
    QuorumOutOfRange {
        /// The offending quorum.
        quorum: ProcessSet,
    },
    /// Consistency violation: a read and write quorum that do not intersect.
    Consistency {
        /// The read quorum.
        read: ProcessSet,
        /// The write quorum.
        write: ProcessSet,
    },
    /// Availability violation for the given pattern index.
    Availability {
        /// Index of the failure pattern in the fail-prone system.
        pattern: usize,
    },
    /// The fail-prone system allows channel failures but a classical
    /// quorum system (Definition 1) was requested.
    ChannelFailuresPresent,
    /// Universe sizes of graph / fail-prone system / families disagree.
    UniverseMismatch {
        /// Universe of the graph.
        graph: usize,
        /// Universe of the fail-prone system.
        fail_prone: usize,
    },
}

impl fmt::Display for QuorumSystemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuorumSystemError::EmptyFamily => write!(f, "quorum family has no quorums"),
            QuorumSystemError::EmptyQuorum => write!(f, "quorum family contains an empty quorum"),
            QuorumSystemError::BadThreshold { n, min_size } => {
                write!(f, "threshold {min_size} is not in 1..={n}")
            }
            QuorumSystemError::QuorumOutOfRange { quorum } => {
                write!(f, "quorum {quorum} mentions processes outside the system")
            }
            QuorumSystemError::Consistency { read, write } => {
                write!(f, "consistency violated: read quorum {read} misses write quorum {write}")
            }
            QuorumSystemError::Availability { pattern } => {
                write!(f, "availability violated for failure pattern #{pattern}")
            }
            QuorumSystemError::ChannelFailuresPresent => {
                write!(f, "classical quorum systems require a crash-only fail-prone system")
            }
            QuorumSystemError::UniverseMismatch { graph, fail_prone } => {
                write!(f, "graph is over {graph} processes, fail-prone system over {fail_prone}")
            }
        }
    }
}

impl std::error::Error for QuorumSystemError {}

/// A witness that availability holds for one failure pattern: the read
/// quorum, the write quorum, and `U_f` (the strongly connected component
/// of Proposition 1 within which wait-freedom is guaranteed).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct AvailabilityWitness {
    /// A read quorum from which the write quorum is `f`-reachable.
    pub read: ProcessSet,
    /// An `f`-available write quorum.
    pub write: ProcessSet,
    /// The strongly connected component `U_f` containing every validating
    /// write quorum (Proposition 1).
    pub u_f: ProcessSet,
}

/// A generalized quorum system `(F, R, W)` over a network graph
/// (Definition 2), validated at construction.
///
/// # Examples
///
/// Figure 1's system:
///
/// ```
/// use gqs_core::systems::figure1;
/// let fig = figure1();
/// let gqs = fig.gqs; // already validated
/// assert_eq!(gqs.u_f(0).to_string(), "{a,b}"); // Example 9: U_f1 = {a,b}
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GeneralizedQuorumSystem {
    graph: NetworkGraph,
    fail_prone: FailProneSystem,
    reads: QuorumFamily,
    writes: QuorumFamily,
    /// One availability witness per pattern, computed during validation
    /// (each over a single shared-cache residual graph) and served by
    /// `availability_witness`/`u_f` without recomputation.
    witnesses: Vec<AvailabilityWitness>,
}

impl GeneralizedQuorumSystem {
    /// Validates and constructs a generalized quorum system.
    ///
    /// Validation builds **one** residual graph per failure pattern and
    /// answers every availability/`U_f` query for that pattern from its
    /// memoized reachability caches; the witnesses are stored, so
    /// [`GeneralizedQuorumSystem::u_f`] and
    /// [`GeneralizedQuorumSystem::availability_witness`] are O(1)
    /// afterwards.
    ///
    /// # Errors
    ///
    /// Returns the first violation found: universe mismatches, quorums out
    /// of range, a Consistency counterexample, or the index of a failure
    /// pattern for which Availability fails.
    pub fn new(
        graph: NetworkGraph,
        fail_prone: FailProneSystem,
        reads: QuorumFamily,
        writes: QuorumFamily,
    ) -> Result<Self, QuorumSystemError> {
        if graph.len() != fail_prone.universe() {
            return Err(QuorumSystemError::UniverseMismatch {
                graph: graph.len(),
                fail_prone: fail_prone.universe(),
            });
        }
        check_in_range(&reads, graph.len())?;
        check_in_range(&writes, graph.len())?;
        if let Err((read, write)) = reads.consistent_with(&writes) {
            return Err(QuorumSystemError::Consistency { read, write });
        }
        let mut witnesses = Vec::with_capacity(fail_prone.len());
        for (i, f) in fail_prone.patterns().enumerate() {
            let res = graph.residual(f);
            match witness_for(&res, &reads, &writes) {
                Some(w) => witnesses.push(w),
                None => return Err(QuorumSystemError::Availability { pattern: i }),
            }
        }
        Ok(GeneralizedQuorumSystem { graph, fail_prone, reads, writes, witnesses })
    }

    /// The network graph.
    pub fn graph(&self) -> &NetworkGraph {
        &self.graph
    }

    /// The fail-prone system.
    pub fn fail_prone(&self) -> &FailProneSystem {
        &self.fail_prone
    }

    /// The read quorum family.
    pub fn reads(&self) -> &QuorumFamily {
        &self.reads
    }

    /// The write quorum family.
    pub fn writes(&self) -> &QuorumFamily {
        &self.writes
    }

    /// The availability witness for pattern `i`, computed at construction
    /// (always `Some` for a validated system; the `Option` is kept for API
    /// stability).
    ///
    /// # Panics
    ///
    /// Panics if `i` is not a valid pattern index.
    pub fn availability_witness(&self, i: usize) -> Option<AvailabilityWitness> {
        assert!(i < self.fail_prone.len(), "pattern index {i} out of range");
        Some(self.witnesses[i])
    }

    /// The set `U_f` for pattern `i` (Proposition 1): the strongly
    /// connected component containing every write quorum that validates
    /// availability under the pattern. Operations are guaranteed to be
    /// wait-free exactly at the members of `U_f` (Theorems 1 and 2).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range. Cannot return an empty set: the
    /// system was validated at construction.
    pub fn u_f(&self, i: usize) -> ProcessSet {
        self.witnesses[i].u_f
    }

    /// The canonical termination mapping `τ(f) = U_f` of Theorem 1, as a
    /// vector indexed by pattern.
    pub fn termination_map(&self) -> Vec<ProcessSet> {
        (0..self.fail_prone.len()).map(|i| self.u_f(i)).collect()
    }
}

impl fmt::Display for GeneralizedQuorumSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "GQS(R = {}, W = {})", self.reads, self.writes)
    }
}

/// A classical read-write quorum system (Definition 1), for fail-prone
/// systems that disallow channel failures between correct processes.
///
/// # Examples
///
/// Example 6's threshold system:
///
/// ```
/// use gqs_core::ClassicalQuorumSystem;
/// let qs = ClassicalQuorumSystem::threshold_system(5, 2)?;
/// # Ok::<(), gqs_core::QuorumSystemError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ClassicalQuorumSystem {
    fail_prone: FailProneSystem,
    reads: QuorumFamily,
    writes: QuorumFamily,
}

impl ClassicalQuorumSystem {
    /// Validates and constructs a classical quorum system.
    ///
    /// # Errors
    ///
    /// Returns an error if the fail-prone system allows channel failures,
    /// or Consistency / Availability (Definition 1) fails.
    pub fn new(
        fail_prone: FailProneSystem,
        reads: QuorumFamily,
        writes: QuorumFamily,
    ) -> Result<Self, QuorumSystemError> {
        if !fail_prone.is_crash_only() {
            return Err(QuorumSystemError::ChannelFailuresPresent);
        }
        let n = fail_prone.universe();
        check_in_range(&reads, n)?;
        check_in_range(&writes, n)?;
        if let Err((read, write)) = reads.consistent_with(&writes) {
            return Err(QuorumSystemError::Consistency { read, write });
        }
        for (i, f) in fail_prone.patterns().enumerate() {
            let correct = f.correct();
            if !reads.is_satisfied(correct) || !writes.is_satisfied(correct) {
                return Err(QuorumSystemError::Availability { pattern: i });
            }
        }
        Ok(ClassicalQuorumSystem { fail_prone, reads, writes })
    }

    /// Example 6: the threshold quorum system tolerating `k` crashes among
    /// `n` processes — read quorums of size `n - k`, write quorums of size
    /// `k + 1`.
    ///
    /// # Errors
    ///
    /// Fails when `n < 2k + 1` (Consistency is then violated), matching
    /// the classical lower bound.
    pub fn threshold_system(n: usize, k: usize) -> Result<Self, QuorumSystemError> {
        let fail_prone = FailProneSystem::threshold(n, k)
            .map_err(|_| QuorumSystemError::BadThreshold { n, min_size: k })?;
        let reads = QuorumFamily::threshold(n, n - k)?;
        let writes = QuorumFamily::threshold(n, k + 1)?;
        Self::new(fail_prone, reads, writes)
    }

    /// The fail-prone system.
    pub fn fail_prone(&self) -> &FailProneSystem {
        &self.fail_prone
    }

    /// The read quorum family.
    pub fn reads(&self) -> &QuorumFamily {
        &self.reads
    }

    /// The write quorum family.
    pub fn writes(&self) -> &QuorumFamily {
        &self.writes
    }

    /// Reinterprets this classical system as a generalized one over a
    /// complete network graph. Every classical quorum system is a GQS
    /// (§3: "a classical quorum system is a special case").
    ///
    /// # Errors
    ///
    /// Never fails for a validated classical system; the error type is
    /// shared for API uniformity.
    pub fn to_generalized(&self) -> Result<GeneralizedQuorumSystem, QuorumSystemError> {
        GeneralizedQuorumSystem::new(
            NetworkGraph::complete(self.fail_prone.universe()),
            self.fail_prone.clone(),
            self.reads.clone(),
            self.writes.clone(),
        )
    }
}

impl fmt::Display for ClassicalQuorumSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "QS(R = {}, W = {})", self.reads, self.writes)
    }
}

/// The strawman `QS+` of §1: Consistency as usual, but Availability
/// strengthened to demand that the union of the available read and write
/// quorums is strongly connected by correct channels (so that bidirectional
/// request/response — ABD, Paxos — works directly).
///
/// The paper's headline result is that `QS+` is *not* necessary: Figure 1
/// admits a GQS but no `QS+`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct QsPlus {
    graph: NetworkGraph,
    fail_prone: FailProneSystem,
    reads: QuorumFamily,
    writes: QuorumFamily,
}

impl QsPlus {
    /// Validates and constructs a `QS+`.
    ///
    /// # Errors
    ///
    /// Returns the first Consistency or (strong) Availability violation.
    pub fn new(
        graph: NetworkGraph,
        fail_prone: FailProneSystem,
        reads: QuorumFamily,
        writes: QuorumFamily,
    ) -> Result<Self, QuorumSystemError> {
        if graph.len() != fail_prone.universe() {
            return Err(QuorumSystemError::UniverseMismatch {
                graph: graph.len(),
                fail_prone: fail_prone.universe(),
            });
        }
        check_in_range(&reads, graph.len())?;
        check_in_range(&writes, graph.len())?;
        if let Err((read, write)) = reads.consistent_with(&writes) {
            return Err(QuorumSystemError::Consistency { read, write });
        }
        let sys = QsPlus { graph, fail_prone, reads, writes };
        for i in 0..sys.fail_prone.len() {
            if sys.availability_witness(i).is_none() {
                return Err(QuorumSystemError::Availability { pattern: i });
            }
        }
        Ok(sys)
    }

    /// Finds `(R, W)` with `R ∪ W` strongly connected among correct
    /// processes under pattern `i`, if possible.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn availability_witness(&self, i: usize) -> Option<(ProcessSet, ProcessSet)> {
        let res = self.graph.residual(self.fail_prone.pattern(i));
        // Any witness (R, W) has R ∪ W inside one SCC, so searching per
        // SCC is complete.
        for scc in res.sccs() {
            let w = match &self.writes {
                QuorumFamily::Explicit(qs) => qs.iter().copied().find(|w| w.is_subset(scc)),
                QuorumFamily::Threshold { min_size, .. } => (scc.len() >= *min_size).then_some(scc),
            };
            let r = match &self.reads {
                QuorumFamily::Explicit(qs) => qs.iter().copied().find(|r| r.is_subset(scc)),
                QuorumFamily::Threshold { min_size, .. } => (scc.len() >= *min_size).then_some(scc),
            };
            if let (Some(r), Some(w)) = (r, w) {
                return Some((r, w));
            }
        }
        None
    }
}

impl fmt::Display for QsPlus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "QS+(R = {}, W = {})", self.reads, self.writes)
    }
}

/// Finds an availability witness for one pattern over an already-built
/// residual graph: the first validating `(R, W)` pair plus `U_f`, the SCC
/// containing every validating write quorum (Proposition 1). All
/// reachability goes through `res`'s memoized caches, so validation costs
/// at most one forward + one backward BFS per vertex per pattern.
fn witness_for(
    res: &ResidualGraph,
    reads: &QuorumFamily,
    writes: &QuorumFamily,
) -> Option<AvailabilityWitness> {
    let mut u = ProcessSet::new();
    let mut first: Option<(ProcessSet, ProcessSet)> = None;
    for w in writes.available_writes(res) {
        if let Some(r) = reads.reaching_read(res, w) {
            u |= w;
            if first.is_none() {
                first = Some((r, w));
            }
        }
    }
    let (read, write) = first?;
    let u_f = res.scc_containing(u).expect("Proposition 1: validating write quorums share one SCC");
    Some(AvailabilityWitness { read, write, u_f })
}

fn check_in_range(family: &QuorumFamily, n: usize) -> Result<(), QuorumSystemError> {
    let universe = ProcessSet::full(n);
    match family {
        QuorumFamily::Explicit(qs) => {
            for q in qs {
                if !q.is_subset(universe) {
                    return Err(QuorumSystemError::QuorumOutOfRange { quorum: *q });
                }
            }
            Ok(())
        }
        QuorumFamily::Threshold { n: fam_n, min_size } => {
            if *fam_n != n {
                return Err(QuorumSystemError::UniverseMismatch { graph: n, fail_prone: *fam_n });
            }
            if *min_size == 0 || *min_size > n {
                return Err(QuorumSystemError::BadThreshold { n, min_size: *min_size });
            }
            Ok(())
        }
    }
}

/// Size and balance metrics of a quorum family — the quantities the
/// classical quorum-system literature (Naor–Wool, cited as \[34\] in §8)
/// optimizes. Useful for comparing the quorums the GQS finder produces
/// against threshold/grid baselines.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct FamilyMetrics {
    /// Number of (distinct) quorums; for threshold families, the count of
    /// minimal quorums `C(n, min_size)` is not enumerated — this is the
    /// number of *sizes* represented, i.e. 1.
    pub quorums: usize,
    /// Smallest quorum cardinality.
    pub min_size: usize,
    /// Largest (minimal-)quorum cardinality.
    pub max_size: usize,
    /// Processes appearing in at least one quorum.
    pub support: usize,
    /// An upper bound on the *load* of the family under the uniform
    /// strategy: the highest fraction of quorums any single process
    /// belongs to. Lower is better (work spreads more evenly).
    pub uniform_load: f64,
}

impl QuorumFamily {
    /// Computes [`FamilyMetrics`] for this family over universe size `n`.
    pub fn metrics(&self, n: usize) -> FamilyMetrics {
        match self {
            QuorumFamily::Explicit(qs) => {
                let min_size = qs.iter().map(|q| q.len()).min().unwrap_or(0);
                let max_size = qs.iter().map(|q| q.len()).max().unwrap_or(0);
                let support = self.support().len();
                let busiest = (0..n)
                    .map(|p| qs.iter().filter(|q| q.contains(crate::ProcessId(p))).count())
                    .max()
                    .unwrap_or(0);
                FamilyMetrics {
                    quorums: qs.len(),
                    min_size,
                    max_size,
                    support,
                    uniform_load: busiest as f64 / qs.len().max(1) as f64,
                }
            }
            QuorumFamily::Threshold { n: fam_n, min_size } => FamilyMetrics {
                quorums: 1,
                min_size: *min_size,
                max_size: *min_size,
                support: *fam_n,
                // Every process is in the same fraction of min-size
                // quorums: C(n-1, m-1)/C(n, m) = m/n.
                uniform_load: *min_size as f64 / (*fam_n).max(1) as f64,
            },
        }
    }
}

/// Convenience: the majority quorum system for `n = 2k + 1` processes,
/// where read and write quorums are both majorities (Example 6, special
/// case `k = ⌊(n-1)/2⌋`).
///
/// # Errors
///
/// Fails for `n == 0`.
pub fn majority_system(n: usize) -> Result<ClassicalQuorumSystem, QuorumSystemError> {
    let k = (n.saturating_sub(1)) / 2;
    ClassicalQuorumSystem::threshold_system(n, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::FailurePattern;
    use crate::{chan, pset};

    #[test]
    fn explicit_family_satisfaction() {
        let fam = QuorumFamily::explicit([pset![0, 1], pset![2]]).unwrap();
        assert!(fam.is_satisfied(pset![0, 1, 3]));
        assert!(fam.is_satisfied(pset![2]));
        assert!(!fam.is_satisfied(pset![0, 3]));
        assert_eq!(fam.satisfying_quorum(pset![2, 3]), Some(pset![2]));
        assert_eq!(fam.satisfying_quorum(pset![3]), None);
        assert!(fam.contains_quorum(pset![0, 1]));
        assert!(!fam.contains_quorum(pset![0]));
        assert_eq!(fam.support(), pset![0, 1, 2]);
    }

    #[test]
    fn threshold_family_satisfaction() {
        let fam = QuorumFamily::threshold(5, 3).unwrap();
        assert!(fam.is_satisfied(pset![0, 1, 2]));
        assert!(!fam.is_satisfied(pset![0, 1]));
        assert!(fam.contains_quorum(pset![1, 2, 3, 4]));
        assert!(!fam.contains_quorum(pset![1, 2]));
        assert_eq!(fam.support(), ProcessSet::full(5));
    }

    #[test]
    fn family_constructors_validate() {
        assert!(matches!(
            QuorumFamily::explicit(std::iter::empty()),
            Err(QuorumSystemError::EmptyFamily)
        ));
        assert!(matches!(
            QuorumFamily::explicit([ProcessSet::new()]),
            Err(QuorumSystemError::EmptyQuorum)
        ));
        assert!(matches!(
            QuorumFamily::threshold(3, 0),
            Err(QuorumSystemError::BadThreshold { .. })
        ));
        assert!(matches!(
            QuorumFamily::threshold(3, 4),
            Err(QuorumSystemError::BadThreshold { .. })
        ));
    }

    #[test]
    fn consistency_explicit_vs_explicit() {
        let r = QuorumFamily::explicit([pset![0, 1]]).unwrap();
        let w_ok = QuorumFamily::explicit([pset![1, 2]]).unwrap();
        let w_bad = QuorumFamily::explicit([pset![2, 3]]).unwrap();
        assert!(r.consistent_with(&w_ok).is_ok());
        assert_eq!(r.consistent_with(&w_bad), Err((pset![0, 1], pset![2, 3])));
    }

    #[test]
    fn consistency_threshold_vs_threshold() {
        let r = QuorumFamily::threshold(5, 3).unwrap();
        let w = QuorumFamily::threshold(5, 3).unwrap();
        assert!(r.consistent_with(&w).is_ok()); // 3 + 3 > 5
        let w_small = QuorumFamily::threshold(5, 2).unwrap();
        let err = r.consistent_with(&w_small).unwrap_err();
        assert!(err.0.is_disjoint(err.1));
        assert_eq!(err.0.len(), 3);
        assert_eq!(err.1.len(), 2);
    }

    #[test]
    fn consistency_mixed() {
        let r = QuorumFamily::explicit([pset![0, 1, 2, 3]]).unwrap();
        let w = QuorumFamily::threshold(5, 2).unwrap();
        // complement of r is {4}, size 1 < 2: consistent.
        assert!(r.consistent_with(&w).is_ok());
        let r2 = QuorumFamily::explicit([pset![0, 1, 2]]).unwrap();
        let err = r2.consistent_with(&w).unwrap_err();
        assert!(err.0.is_disjoint(err.1));
        // And the symmetric direction.
        let err2 = w.consistent_with(&r2).unwrap_err();
        assert!(err2.0.is_disjoint(err2.1));
    }

    #[test]
    fn classical_threshold_system_bounds() {
        assert!(ClassicalQuorumSystem::threshold_system(5, 2).is_ok());
        assert!(ClassicalQuorumSystem::threshold_system(4, 2).is_err()); // n < 2k+1
        assert!(majority_system(7).is_ok());
        assert!(majority_system(1).is_ok());
    }

    #[test]
    fn classical_rejects_channel_failures() {
        let f = FailurePattern::new(3, pset![], [chan!(0, 1)]).unwrap();
        let fp = FailProneSystem::new(3, [f]).unwrap();
        let fam = QuorumFamily::threshold(3, 2).unwrap();
        assert!(matches!(
            ClassicalQuorumSystem::new(fp, fam.clone(), fam),
            Err(QuorumSystemError::ChannelFailuresPresent)
        ));
    }

    #[test]
    fn classical_availability_violation_detected() {
        // 3 processes, 2 may crash, majority quorums: availability fails.
        let fp = FailProneSystem::threshold(3, 2).unwrap();
        let fam = QuorumFamily::threshold(3, 2).unwrap();
        assert!(matches!(
            ClassicalQuorumSystem::new(fp, fam.clone(), fam),
            Err(QuorumSystemError::Availability { .. })
        ));
    }

    #[test]
    fn classical_embeds_into_generalized() {
        let qs = ClassicalQuorumSystem::threshold_system(5, 2).unwrap();
        let gqs = qs.to_generalized().unwrap();
        // Under any pattern, U_f is the full correct set (complete graph).
        for i in 0..gqs.fail_prone().len() {
            let f = gqs.fail_prone().pattern(i);
            assert_eq!(gqs.u_f(i), f.correct());
        }
    }

    #[test]
    fn gqs_universe_mismatch_rejected() {
        let g = NetworkGraph::complete(3);
        let fp = FailProneSystem::threshold(4, 1).unwrap();
        let fam = QuorumFamily::threshold(3, 2).unwrap();
        assert!(matches!(
            GeneralizedQuorumSystem::new(g, fp, fam.clone(), fam),
            Err(QuorumSystemError::UniverseMismatch { .. })
        ));
    }

    #[test]
    fn gqs_consistency_violation_reported() {
        let g = NetworkGraph::complete(4);
        let fp = FailProneSystem::new(4, [FailurePattern::failure_free(4)]).unwrap();
        let reads = QuorumFamily::explicit([pset![0]]).unwrap();
        let writes = QuorumFamily::explicit([pset![1]]).unwrap();
        assert_eq!(
            GeneralizedQuorumSystem::new(g, fp, reads, writes),
            Err(QuorumSystemError::Consistency { read: pset![0], write: pset![1] })
        );
    }

    #[test]
    fn gqs_availability_violation_reported() {
        // One-way line 0 -> 1: {0,1} is not strongly connected, and the
        // only quorums are {0,1}.
        let g = NetworkGraph::with_channels(2, [chan!(0, 1)]);
        let fp = FailProneSystem::new(2, [FailurePattern::failure_free(2)]).unwrap();
        let fam = QuorumFamily::explicit([pset![0, 1]]).unwrap();
        assert_eq!(
            GeneralizedQuorumSystem::new(g, fp, fam.clone(), fam),
            Err(QuorumSystemError::Availability { pattern: 0 })
        );
    }

    #[test]
    fn gqs_unidirectional_reachability_suffices() {
        // 0 <-> 1 strongly connected; 2 only pushes into the pair.
        let g = NetworkGraph::with_channels(3, [chan!(0, 1), chan!(1, 0), chan!(2, 0)]);
        let fp = FailProneSystem::new(3, [FailurePattern::failure_free(3)]).unwrap();
        let reads = QuorumFamily::explicit([pset![0, 2]]).unwrap();
        let writes = QuorumFamily::explicit([pset![0, 1]]).unwrap();
        let gqs =
            GeneralizedQuorumSystem::new(g.clone(), fp.clone(), reads.clone(), writes.clone())
                .unwrap();
        assert_eq!(gqs.u_f(0), pset![0, 1]);
        // But QS+ fails: {0,2} is not inside any SCC.
        assert!(matches!(
            QsPlus::new(g, fp, reads, writes),
            Err(QuorumSystemError::Availability { .. })
        ));
    }

    #[test]
    fn qs_plus_accepts_fully_connected() {
        let g = NetworkGraph::complete(3);
        let fp = FailProneSystem::threshold(3, 1).unwrap();
        let fam = QuorumFamily::threshold(3, 2).unwrap();
        let qsp = QsPlus::new(g, fp, fam.clone(), fam).unwrap();
        let (r, w) = qsp.availability_witness(0).unwrap();
        assert!(r.len() >= 2 && w.len() >= 2);
    }

    #[test]
    fn termination_map_has_one_entry_per_pattern() {
        let qs = ClassicalQuorumSystem::threshold_system(3, 1).unwrap();
        let gqs = qs.to_generalized().unwrap();
        let tm = gqs.termination_map();
        assert_eq!(tm.len(), gqs.fail_prone().len());
        for (i, u) in tm.iter().enumerate() {
            assert_eq!(*u, gqs.fail_prone().pattern(i).correct());
        }
    }

    #[test]
    fn metrics_of_explicit_families() {
        // Figure 1's write quorums: four 2-sets covering all processes,
        // each process in exactly 2 of 4 quorums.
        let fam =
            QuorumFamily::explicit([pset![0, 1], pset![1, 2], pset![2, 3], pset![3, 0]]).unwrap();
        let m = fam.metrics(4);
        assert_eq!(m.quorums, 4);
        assert_eq!((m.min_size, m.max_size), (2, 2));
        assert_eq!(m.support, 4);
        assert!((m.uniform_load - 0.5).abs() < 1e-9);
    }

    #[test]
    fn metrics_of_threshold_families() {
        let fam = QuorumFamily::threshold(5, 3).unwrap();
        let m = fam.metrics(5);
        assert_eq!((m.min_size, m.max_size), (3, 3));
        assert_eq!(m.support, 5);
        assert!((m.uniform_load - 0.6).abs() < 1e-9);
    }

    #[test]
    fn grid_load_beats_majority_load() {
        // The classical point of grids: O(sqrt(n)) quorums with lower load.
        let grid = crate::systems::grid_system(3, 3, 1).unwrap();
        let grid_reads = grid.reads().metrics(9);
        let maj = majority_system(9).unwrap();
        let maj_reads = maj.reads().metrics(9);
        assert!(grid_reads.min_size < maj_reads.min_size);
        assert!(grid_reads.uniform_load < maj_reads.uniform_load);
    }

    #[test]
    fn display_impls() {
        let fam = QuorumFamily::explicit([pset![0, 1]]).unwrap();
        assert_eq!(fam.to_string(), "{{a,b}}");
        let th = QuorumFamily::threshold(4, 2).unwrap();
        assert!(th.to_string().contains("≥ 2"));
    }
}
