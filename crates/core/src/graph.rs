//! Network graphs, residual graphs and the graph algorithms the paper's
//! definitions rest on (§3).
//!
//! * The *network graph* `G = (P, C)` has all processes as vertices and all
//!   channels as directed edges.
//! * The *residual graph* `G \ f` of a failure pattern `f = (P, C)` removes
//!   the faulty processes, their incident channels, and the failing
//!   channels.
//! * A set `Q` is *`f`-available* if it contains only correct processes and
//!   is strongly connected in `G \ f` (paths may pass through vertices
//!   outside `Q`).
//! * A set `W` is *`f`-reachable from `R`* if both contain only correct
//!   processes and every member of `W` is reachable from every member of
//!   `R` in `G \ f`.
//!
//! # Performance model
//!
//! This module is the hot core of every decision procedure, so its layout
//! is chosen for sweep workloads (many residual graphs per topology, many
//! reachability queries per residual graph):
//!
//! * [`NetworkGraph`] stores **both** the successor bitset rows `adj` and
//!   the transpose (predecessor) rows `radj`, shared behind an [`Arc`].
//!   [`NetworkGraph::residual`] therefore never clones the adjacency
//!   vectors — a residual graph is the shared base plus an alive-mask;
//!   construction copies and edits only the rows touched by the pattern's
//!   failing channels, and every other row is masked lazily on first use.
//! * Forward and backward reachability are frontier BFS over bitset rows:
//!   `O(V + E/w)` words touched per query (`w` = machine-word bits), and
//!   in particular [`ResidualGraph::reach_to`] walks the transpose rows
//!   instead of the old `O(n²)`-per-round fixpoint that rescanned
//!   `alive - reach`.
//! * Every [`ResidualGraph`] memoizes `reach_from(p)` and `reach_to(p)`
//!   per vertex ([`Cell`]-based, so queries take `&self`). All
//!   higher-level queries — [`ResidualGraph::reach_to_all`],
//!   [`ResidualGraph::all_reach_all`],
//!   [`ResidualGraph::is_strongly_connected`], [`ResidualGraph::sccs`],
//!   [`ResidualGraph::scc_of`] — route through the same caches, so a
//!   residual graph computes at most one forward and one backward BFS per
//!   vertex over its entire lifetime, no matter how many queries are made.
//!
//! **Caching contract:** a `ResidualGraph` is immutable after
//! construction; the caches are pure memoization and never observable in
//! results. Mutating the underlying [`NetworkGraph`] after taking a
//! residual is impossible by construction (the base is copy-on-write:
//! mutators call `Arc::make_mut`, which un-shares the topology instead of
//! editing it under live residuals).

use std::cell::Cell;
use std::fmt;
use std::sync::Arc;

use crate::channel::Channel;
use crate::failure::FailurePattern;
use crate::process::{ProcessId, ProcessSet, MAX_PROCESSES};

/// The shared, immutable payload of a [`NetworkGraph`]: forward and
/// transpose adjacency rows.
#[derive(Clone, PartialEq, Eq, Debug)]
struct Topology {
    n: usize,
    /// `adj[p]` = successors of `p`.
    adj: Vec<ProcessSet>,
    /// `radj[p]` = predecessors of `p` (the transpose rows).
    radj: Vec<ProcessSet>,
}

/// The static network topology `G = (P, C)`.
///
/// Stored as per-vertex successor **and** predecessor bitsets behind a
/// shared [`Arc`], which makes residual-graph construction allocation-free
/// and both directions of reachability cheap bit operations.
///
/// # Examples
///
/// ```
/// use gqs_core::NetworkGraph;
/// let g = NetworkGraph::complete(4);
/// assert_eq!(g.len(), 4);
/// assert_eq!(g.channels().count(), 12); // n(n-1) directed channels
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NetworkGraph {
    core: Arc<Topology>,
}

impl NetworkGraph {
    /// A graph on `n` processes with no channels.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > MAX_PROCESSES`.
    pub fn empty(n: usize) -> Self {
        assert!(n > 0, "a system has at least one process");
        assert!(n <= MAX_PROCESSES, "at most {MAX_PROCESSES} processes are supported");
        NetworkGraph {
            core: Arc::new(Topology {
                n,
                adj: vec![ProcessSet::new(); n],
                radj: vec![ProcessSet::new(); n],
            }),
        }
    }

    /// The complete directed graph on `n` processes — the paper's standard
    /// model, where every ordered pair of distinct processes has a channel.
    pub fn complete(n: usize) -> Self {
        let mut g = Self::empty(n);
        let core = Arc::make_mut(&mut g.core);
        for p in 0..n {
            let row = ProcessSet::full(n).without(ProcessId(p));
            core.adj[p] = row;
            core.radj[p] = row;
        }
        g
    }

    /// Builds a graph from an explicit channel list.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is out of range.
    pub fn with_channels<I>(n: usize, channels: I) -> Self
    where
        I: IntoIterator<Item = Channel>,
    {
        let mut g = Self::empty(n);
        for ch in channels {
            g.add_channel(ch);
        }
        g
    }

    /// Number of processes.
    pub fn len(&self) -> usize {
        self.core.n
    }

    /// `true` iff the graph has no processes (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.core.n == 0
    }

    /// The set of all processes.
    pub fn processes(&self) -> ProcessSet {
        ProcessSet::full(self.core.n)
    }

    /// Adds a channel.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is `>= len()`.
    pub fn add_channel(&mut self, ch: Channel) {
        let n = self.core.n;
        assert!(ch.from.index() < n && ch.to.index() < n, "channel endpoint out of range");
        let core = Arc::make_mut(&mut self.core);
        core.adj[ch.from.index()].insert(ch.to);
        core.radj[ch.to.index()].insert(ch.from);
    }

    /// Removes a channel; returns `true` if it was present.
    pub fn remove_channel(&mut self, ch: Channel) -> bool {
        if !self.has_channel(ch) {
            // Also keeps absent/out-of-range channels from un-sharing the
            // copy-on-write topology.
            return false;
        }
        let core = Arc::make_mut(&mut self.core);
        core.radj[ch.to.index()].remove(ch.from);
        core.adj[ch.from.index()].remove(ch.to)
    }

    /// Whether the channel is present.
    pub fn has_channel(&self, ch: Channel) -> bool {
        ch.from.index() < self.core.n && self.core.adj[ch.from.index()].contains(ch.to)
    }

    /// Successors of `p` in the graph.
    pub fn successors(&self, p: ProcessId) -> ProcessSet {
        self.core.adj[p.index()]
    }

    /// Predecessors of `p` in the graph (the transpose row).
    pub fn predecessors(&self, p: ProcessId) -> ProcessSet {
        self.core.radj[p.index()]
    }

    /// Iterates over all channels.
    pub fn channels(&self) -> impl Iterator<Item = Channel> + '_ {
        (0..self.core.n)
            .flat_map(move |p| self.core.adj[p].iter().map(move |q| Channel::new(ProcessId(p), q)))
    }

    /// The residual graph `G \ f`: faulty processes, their incident
    /// channels, and the channels in `f` are removed.
    ///
    /// The base adjacency is shared, not cloned: the residual graph holds
    /// an `Arc` to this graph's topology, an alive-mask, and edited copies
    /// of only the (few) rows the pattern's channel failures touch.
    ///
    /// # Panics
    ///
    /// Panics if `f` talks about processes outside this graph.
    pub fn residual(&self, f: &FailurePattern) -> ResidualGraph {
        assert!(
            f.universe() == self.core.n,
            "failure pattern is over {} processes but the graph has {}",
            f.universe(),
            self.core.n
        );
        let res = ResidualGraph::new(Arc::clone(&self.core), f.correct());
        for ch in f.channels() {
            res.drop_channel_at_build(ch);
        }
        res
    }

    /// The residual graph of the failure-free pattern (nothing removed).
    pub fn residual_failure_free(&self) -> ResidualGraph {
        ResidualGraph::new(Arc::clone(&self.core), self.processes())
    }
}

impl fmt::Display for NetworkGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "G(n={}; ", self.core.n)?;
        let mut first = true;
        for ch in self.channels() {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{ch}")?;
            first = false;
        }
        write!(f, ")")
    }
}

/// Dispatches a word-count-generic `ResidualGraph` method on the runtime
/// word count `self.nw`, monomorphizing one kernel per possible word count
/// so every hot loop gets a compile-time trip count (and slice bounds the
/// optimizer can discharge). Usage: `with_word_count!(self, method, args…)`.
macro_rules! with_word_count {
    ($self:ident, $method:ident $(, $arg:expr)*) => {{
        match $self.nw {
            1 => $self.$method::<1>($($arg),*),
            2 => $self.$method::<2>($($arg),*),
            3 => $self.$method::<3>($($arg),*),
            4 => $self.$method::<4>($($arg),*),
            5 => $self.$method::<5>($($arg),*),
            6 => $self.$method::<6>($($arg),*),
            7 => $self.$method::<7>($($arg),*),
            8 => $self.$method::<8>($($arg),*),
            9 => $self.$method::<9>($($arg),*),
            10 => $self.$method::<10>($($arg),*),
            11 => $self.$method::<11>($($arg),*),
            12 => $self.$method::<12>($($arg),*),
            13 => $self.$method::<13>($($arg),*),
            14 => $self.$method::<14>($($arg),*),
            15 => $self.$method::<15>($($arg),*),
            16 => $self.$method::<16>($($arg),*),
            _ => unreachable!("words_for(n) is within 1..=ProcessSet::WORDS"),
        }
    }};
}

// `with_word_count!` enumerates exactly the word counts 1..=16.
const _: () = assert!(ProcessSet::WORDS == 16, "update with_word_count!'s dispatch arms");

/// The four per-vertex cache segments packed into one allocation: the
/// effective successor/predecessor rows and the forward/backward reach
/// sets. A segment entry is valid iff its bit is set in the matching
/// validity mask (one word-count-bounded bitmask of `words_for(n)` words
/// per segment, so the layout scales with the universe instead of being
/// hardcoded to any word width).
const SEG_ROW: usize = 0;
const SEG_RROW: usize = 1;
const SEG_FWD: usize = 2;
const SEG_BWD: usize = 3;

/// The residual graph `G \ f` of a network graph under a failure pattern.
///
/// Vertices outside [`ResidualGraph::alive`] are isolated and never appear
/// in reachability sets or strongly connected components.
///
/// Internally this is a **view**: the base topology is shared with the
/// originating [`NetworkGraph`] (no adjacency clone). Construction copies
/// and edits only the rows the pattern's channel failures touch; all other
/// rows, and all per-vertex forward/backward reach sets, are derived
/// lazily and memoized (see the module docs for the caching contract).
#[derive(Debug)]
pub struct ResidualGraph {
    base: Arc<Topology>,
    alive: ProcessSet,
    /// Words per cached set: `ProcessSet::words_for(n)`. Cached rows and
    /// reach sets are stored word-count-bounded, so a 32-process residual
    /// costs one word per entry while a 1024-process one uses sixteen.
    nw: usize,
    /// One allocation of `4 * n * nw` words: segment `s` of vertex `p`
    /// occupies `cache[(s * n + p) * nw ..][..nw]`.
    cache: Vec<Cell<u64>>,
    /// Per-segment validity bitmasks over vertices: segment `s`'s bit for
    /// vertex `p` is bit `p % 64` of `valid[s * nw + p / 64]`.
    valid: Vec<Cell<u64>>,
}

impl Clone for ResidualGraph {
    fn clone(&self) -> Self {
        ResidualGraph {
            base: Arc::clone(&self.base),
            alive: self.alive,
            nw: self.nw,
            cache: self.cache.clone(),
            valid: self.valid.clone(),
        }
    }
}

impl PartialEq for ResidualGraph {
    /// Semantic equality: same universe, same alive set, same effective
    /// edges. Memoization state is ignored.
    fn eq(&self, other: &Self) -> bool {
        self.base.n == other.base.n
            && self.alive == other.alive
            && (0..self.base.n)
                .all(|p| self.successors(ProcessId(p)) == other.successors(ProcessId(p)))
    }
}

impl Eq for ResidualGraph {}

impl ResidualGraph {
    fn new(base: Arc<Topology>, alive: ProcessSet) -> Self {
        let n = base.n;
        let nw = ProcessSet::words_for(n);
        ResidualGraph {
            base,
            alive,
            nw,
            cache: vec![Cell::new(0); 4 * n * nw],
            valid: vec![Cell::new(0); 4 * nw],
        }
    }

    #[inline]
    fn seg_get(&self, seg: usize, p: usize) -> Option<ProcessSet> {
        if self.valid[seg * self.nw + p / 64].get() & (1u64 << (p % 64)) == 0 {
            return None;
        }
        Some(self.read_cache_words((seg * self.base.n + p) * self.nw))
    }

    #[inline]
    fn seg_set(&self, seg: usize, p: usize, value: ProcessSet) {
        let base = (seg * self.base.n + p) * self.nw;
        for i in 0..self.nw {
            self.cache[base + i].set(value.word(i));
        }
        let v = &self.valid[seg * self.nw + p / 64];
        v.set(v.get() | 1u64 << (p % 64));
    }

    /// Frontier BFS over word-bounded rows: starts at the alive vertex `p`,
    /// expands along the effective rows of `seg`/`rows` (materializing row
    /// cache entries on first touch), and returns the reach set.
    ///
    /// Dispatches once on the universe's word count to a monomorphized
    /// kernel ([`ResidualGraph::bfs_fixed`]), so every loop below has a
    /// compile-time trip count: for `n <= 64` the kernel degenerates to
    /// single-register scalar ops, for `n <= 128` to two words — the same
    /// cost profile as the old `u128` backing — and larger universes pay
    /// only for the words they actually use.
    fn bfs(&self, seg: usize, rows: &[ProcessSet], p: usize) -> ProcessSet {
        with_word_count!(self, bfs_fixed, seg, rows, p)
    }

    /// The BFS kernel, monomorphized per word count (`NW == self.nw`).
    /// Only the low `NW` words of any row are ever touched, and the cache
    /// stride equals `NW`, so all indexing below is in terms of the
    /// compile-time constant.
    fn bfs_fixed<const NW: usize>(&self, seg: usize, rows: &[ProcessSet], p: usize) -> ProcessSet {
        debug_assert_eq!(self.nw, NW);
        let mut reach = [0u64; NW];
        let mut frontier = [0u64; NW];
        reach[p / 64] = 1u64 << (p % 64);
        frontier[p / 64] = reach[p / 64];
        loop {
            let mut next = [0u64; NW];
            for (wi, &fw) in frontier.iter().enumerate() {
                let mut w = fw;
                while w != 0 {
                    let q = wi * 64 + w.trailing_zeros() as usize;
                    w &= w - 1;
                    let cbase = self.materialize_row_fixed::<NW>(seg, rows, q);
                    let crow = &self.cache[cbase..][..NW];
                    for i in 0..NW {
                        next[i] |= crow[i].get();
                    }
                }
            }
            let mut grew = false;
            for i in 0..NW {
                frontier[i] = next[i] & !reach[i];
                reach[i] |= next[i];
                grew |= frontier[i] != 0;
            }
            if !grew {
                return ProcessSet::from_words(&reach);
            }
        }
    }

    /// Ensures the effective row of vertex `q` (base ∧ alive, minus any
    /// dropped channels) is materialized in segment `seg`'s cache, and
    /// returns the word offset of the row. Word-bounded: touches only the
    /// low `nw` words.
    #[inline]
    fn materialize_row(&self, seg: usize, rows: &[ProcessSet], q: usize) -> usize {
        with_word_count!(self, materialize_row_fixed, seg, rows, q)
    }

    /// The single home of the row cache protocol (validity check, `base ∧
    /// alive` fill, validity set), monomorphized per word count
    /// (`NW == self.nw`) so the BFS kernel can call it without losing its
    /// compile-time trip counts.
    #[inline]
    fn materialize_row_fixed<const NW: usize>(
        &self,
        seg: usize,
        rows: &[ProcessSet],
        q: usize,
    ) -> usize {
        debug_assert_eq!(self.nw, NW);
        let cbase = (seg * self.base.n + q) * NW;
        let v = &self.valid[seg * NW + q / 64];
        if v.get() & (1u64 << (q % 64)) == 0 {
            let row = rows[q].as_words();
            let alive = self.alive.as_words();
            let crow = &self.cache[cbase..][..NW];
            for i in 0..NW {
                crow[i].set(row[i] & alive[i]);
            }
            v.set(v.get() | 1u64 << (q % 64));
        }
        cbase
    }

    /// Removes one failing channel while the residual is being built: the
    /// affected rows are materialized (base ∧ alive) and the single bit is
    /// cleared in place, so queries never consult the failure pattern again.
    fn drop_channel_at_build(&self, ch: Channel) {
        let (from, to) = (ch.from.index(), ch.to.index());
        let row = self.materialize_row(SEG_ROW, &self.base.adj, from) + to / 64;
        self.cache[row].set(self.cache[row].get() & !(1u64 << (to % 64)));
        let rrow = self.materialize_row(SEG_RROW, &self.base.radj, to) + from / 64;
        self.cache[rrow].set(self.cache[rrow].get() & !(1u64 << (from % 64)));
    }

    /// Number of processes in the underlying system (including removed ones).
    pub fn len(&self) -> usize {
        self.base.n
    }

    /// `true` iff the underlying system has no processes (never).
    pub fn is_empty(&self) -> bool {
        self.base.n == 0
    }

    /// The set of correct (non-removed) processes.
    pub fn alive(&self) -> ProcessSet {
        self.alive
    }

    /// Successors of `p` among alive processes.
    #[inline]
    pub fn successors(&self, p: ProcessId) -> ProcessSet {
        if !self.alive.contains(p) {
            return ProcessSet::new();
        }
        let cbase = self.materialize_row(SEG_ROW, &self.base.adj, p.index());
        self.read_cache_words(cbase)
    }

    /// Predecessors of `p` among alive processes (transpose row).
    #[inline]
    pub fn predecessors(&self, p: ProcessId) -> ProcessSet {
        if !self.alive.contains(p) {
            return ProcessSet::new();
        }
        let cbase = self.materialize_row(SEG_RROW, &self.base.radj, p.index());
        self.read_cache_words(cbase)
    }

    /// Rebuilds a set from the `nw` cache words at `cbase`.
    #[inline]
    fn read_cache_words(&self, cbase: usize) -> ProcessSet {
        let mut s = ProcessSet::new();
        for (i, c) in self.cache[cbase..][..self.nw].iter().enumerate() {
            s.set_word(i, c.get());
        }
        s
    }

    /// Whether the channel survives in the residual graph.
    pub fn has_channel(&self, ch: Channel) -> bool {
        self.successors(ch.from).contains(ch.to)
    }

    /// The set of vertices reachable from `p` (including `p` itself, if
    /// alive; a vertex always reaches itself via the empty path).
    ///
    /// Memoized: the BFS runs at most once per vertex per residual graph.
    pub fn reach_from(&self, p: ProcessId) -> ProcessSet {
        if !self.alive.contains(p) {
            return ProcessSet::new();
        }
        if let Some(cached) = self.seg_get(SEG_FWD, p.index()) {
            return cached;
        }
        let reach = self.bfs(SEG_ROW, &self.base.adj, p.index());
        self.seg_set(SEG_FWD, p.index(), reach);
        reach
    }

    /// The set of vertices that can reach `p` (including `p` itself).
    ///
    /// A frontier BFS over the transpose rows — `O(V + E/w)` words, not
    /// the quadratic fixpoint of earlier revisions — and memoized like
    /// [`ResidualGraph::reach_from`].
    pub fn reach_to(&self, p: ProcessId) -> ProcessSet {
        if !self.alive.contains(p) {
            return ProcessSet::new();
        }
        if let Some(cached) = self.seg_get(SEG_BWD, p.index()) {
            return cached;
        }
        let reach = self.bfs(SEG_RROW, &self.base.radj, p.index());
        self.seg_set(SEG_BWD, p.index(), reach);
        reach
    }

    /// The set of vertices that can reach **every** member of `set`.
    ///
    /// Returns the empty set if `set` is empty (vacuous universal
    /// quantification is deliberately rejected: a read quorum must be
    /// nonempty) or contains dead vertices.
    pub fn reach_to_all(&self, set: ProcessSet) -> ProcessSet {
        if set.is_empty() || !set.is_subset(self.alive) {
            return ProcessSet::new();
        }
        with_word_count!(self, reach_to_all_fixed, set)
    }

    /// Word-count-monomorphized core of [`ResidualGraph::reach_to_all`]:
    /// intersects the (cached) backward reach rows of every member of
    /// `set`, reading the cache words directly.
    fn reach_to_all_fixed<const NW: usize>(&self, set: ProcessSet) -> ProcessSet {
        debug_assert_eq!(self.nw, NW);
        let mut acc = [0u64; NW];
        acc.copy_from_slice(&self.alive.as_words()[..NW]);
        for p in set {
            let pi = p.index();
            if self.valid[SEG_BWD * NW + pi / 64].get() & (1u64 << (pi % 64)) == 0 {
                let _ = self.reach_to(p); // fill the SEG_BWD cache entry
            }
            let crow = &self.cache[(SEG_BWD * self.base.n + pi) * NW..][..NW];
            let mut any = false;
            for i in 0..NW {
                acc[i] &= crow[i].get();
                any |= acc[i] != 0;
            }
            if !any {
                break;
            }
        }
        ProcessSet::from_words(&acc)
    }

    /// Whether the forward reach set of `p` contains all of `set`,
    /// consulting (and on first touch filling) the `SEG_FWD` cache row
    /// directly — a word-bounded subset test with no full-width set
    /// materialization, shared by the quorum-validation hot paths.
    #[inline]
    fn cached_fwd_superset(&self, p: ProcessId, set: ProcessSet) -> bool {
        let nw = self.nw;
        let pi = p.index();
        if self.valid[SEG_FWD * nw + pi / 64].get() & (1u64 << (pi % 64)) == 0 {
            let _ = self.reach_from(p); // fill the SEG_FWD cache entry
        }
        let crow = &self.cache[(SEG_FWD * self.base.n + pi) * nw..][..nw];
        let sw = set.as_words();
        let mut stray = 0u64;
        for (i, c) in crow.iter().enumerate() {
            stray |= sw[i] & !c.get();
        }
        stray == 0
    }

    /// Whether every member of `to` is reachable from every member of
    /// `from` (the core of the paper's `f`-reachability).
    pub fn all_reach_all(&self, from: ProcessSet, to: ProcessSet) -> bool {
        if from.is_empty() || to.is_empty() {
            return false;
        }
        if !from.is_subset(self.alive) || !to.is_subset(self.alive) {
            return false;
        }
        from.iter().all(|p| self.cached_fwd_superset(p, to))
    }

    /// Whether `set` is strongly connected in the residual graph: every
    /// pair of members is mutually reachable (paths may pass through
    /// vertices outside `set`). Singletons are strongly connected; the
    /// empty set is not (quorums are nonempty).
    pub fn is_strongly_connected(&self, set: ProcessSet) -> bool {
        if set.is_empty() || !set.is_subset(self.alive) {
            return false;
        }
        set.iter().all(|p| self.cached_fwd_superset(p, set))
    }

    /// The strongly connected components of the alive part of the graph,
    /// each as a [`ProcessSet`]. Singletons are included. The order is
    /// by smallest member.
    ///
    /// Components are intersections of the memoized forward and backward
    /// reach sets, so repeated calls (and interleaved reachability
    /// queries) share all BFS work.
    pub fn sccs(&self) -> Vec<ProcessSet> {
        let mut assigned = ProcessSet::new();
        let mut out = Vec::new();
        for p in self.alive {
            if assigned.contains(p) {
                continue;
            }
            let scc = self.scc_of(p);
            assigned |= scc;
            out.push(scc);
        }
        out
    }

    /// The strongly connected component containing `p`, or the empty set if
    /// `p` is not alive.
    pub fn scc_of(&self, p: ProcessId) -> ProcessSet {
        if !self.alive.contains(p) {
            return ProcessSet::new();
        }
        let rf = self.reach_from(p);
        let rt = self.reach_to(p);
        let scc = rf & rt;
        // Every member of one SCC has the same forward and backward reach
        // sets; seed their caches so the component costs two BFS total, not
        // two per member.
        for q in scc.without(p) {
            self.seg_set(SEG_FWD, q.index(), rf);
            self.seg_set(SEG_BWD, q.index(), rt);
        }
        scc
    }

    /// The smallest strongly connected component containing the whole of
    /// `set`, if one exists (Proposition 1 uses this to define `U_f`).
    pub fn scc_containing(&self, set: ProcessSet) -> Option<ProcessSet> {
        let p = set.first()?;
        let scc = self.scc_of(p);
        if set.is_subset(scc) {
            Some(scc)
        } else {
            None
        }
    }

    /// Transitive closure: `closure[p]` is the forward reach set of `p`.
    pub fn transitive_closure(&self) -> Vec<ProcessSet> {
        (0..self.base.n).map(|p| self.reach_from(ProcessId(p))).collect()
    }

    /// Whether `w` is `f`-available: only correct processes, strongly
    /// connected in this residual graph (§3).
    pub fn f_available(&self, w: ProcessSet) -> bool {
        self.is_strongly_connected(w)
    }

    /// Whether `w` is `f`-reachable from `r` (§3): both contain only
    /// correct processes and every member of `w` is reachable from every
    /// member of `r`.
    pub fn f_reachable(&self, w: ProcessSet, r: ProcessSet) -> bool {
        self.all_reach_all(r, w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{chan, pset};

    fn line_graph(n: usize) -> NetworkGraph {
        // 0 -> 1 -> 2 -> ... -> n-1
        NetworkGraph::with_channels(n, (0..n - 1).map(|i| chan!(i, i + 1)))
    }

    #[test]
    fn complete_graph_channel_count() {
        let g = NetworkGraph::complete(5);
        assert_eq!(g.channels().count(), 20);
        assert!(g.has_channel(chan!(0, 4)));
        assert!(g.has_channel(chan!(4, 0)));
    }

    #[test]
    fn add_remove_channel() {
        let mut g = NetworkGraph::empty(3);
        g.add_channel(chan!(0, 1));
        assert!(g.has_channel(chan!(0, 1)));
        assert!(!g.has_channel(chan!(1, 0)));
        assert!(g.remove_channel(chan!(0, 1)));
        assert!(!g.remove_channel(chan!(0, 1)));
    }

    #[test]
    fn remove_out_of_range_channel_is_a_no_op() {
        let mut g = NetworkGraph::empty(3);
        assert!(!g.remove_channel(chan!(5, 0)));
        assert!(!g.remove_channel(chan!(0, 5)));
    }

    #[test]
    fn transpose_tracks_mutations() {
        let mut g = NetworkGraph::empty(3);
        g.add_channel(chan!(0, 1));
        g.add_channel(chan!(2, 1));
        assert_eq!(g.predecessors(ProcessId(1)), pset![0, 2]);
        assert!(g.remove_channel(chan!(0, 1)));
        assert_eq!(g.predecessors(ProcessId(1)), pset![2]);
        assert_eq!(g.successors(ProcessId(2)), pset![1]);
    }

    #[test]
    fn mutating_a_graph_does_not_disturb_live_residuals() {
        // Copy-on-write: the residual keeps the topology it was taken from.
        let mut g = NetworkGraph::with_channels(3, [chan!(0, 1), chan!(1, 2)]);
        let res = g.residual_failure_free();
        g.remove_channel(chan!(0, 1));
        g.add_channel(chan!(2, 0));
        assert!(res.has_channel(chan!(0, 1)));
        assert!(!res.has_channel(chan!(2, 0)));
        assert_eq!(res.reach_from(ProcessId(0)), pset![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "endpoint out of range")]
    fn add_channel_out_of_range_panics() {
        let mut g = NetworkGraph::empty(2);
        g.add_channel(chan!(0, 5));
    }

    #[test]
    fn reachability_on_a_line() {
        let g = line_graph(4).residual_failure_free();
        assert_eq!(g.reach_from(ProcessId(0)), pset![0, 1, 2, 3]);
        assert_eq!(g.reach_from(ProcessId(2)), pset![2, 3]);
        assert_eq!(g.reach_to(ProcessId(3)), pset![0, 1, 2, 3]);
        assert_eq!(g.reach_to(ProcessId(0)), pset![0]);
        assert!(g.all_reach_all(pset![0, 1], pset![2, 3]));
        assert!(!g.all_reach_all(pset![1], pset![0]));
    }

    #[test]
    fn memoized_queries_are_stable() {
        let g = line_graph(5).residual_failure_free();
        // First call populates the cache; the second must agree exactly.
        for p in 0..5 {
            assert_eq!(g.reach_from(ProcessId(p)), g.reach_from(ProcessId(p)));
            assert_eq!(g.reach_to(ProcessId(p)), g.reach_to(ProcessId(p)));
        }
        assert_eq!(g.sccs(), g.sccs());
    }

    #[test]
    fn reach_to_all_intersects_members() {
        let g = line_graph(4).residual_failure_free();
        assert_eq!(g.reach_to_all(pset![2]), pset![0, 1, 2]);
        assert_eq!(g.reach_to_all(pset![1, 3]), pset![0, 1]);
        assert_eq!(g.reach_to_all(ProcessSet::new()), ProcessSet::new());
    }

    #[test]
    fn strong_connectivity_via_outside_vertices() {
        // 0 <-> 1 through 2: 0->2->1 and 1->0.
        let g = NetworkGraph::with_channels(3, [chan!(0, 2), chan!(2, 1), chan!(1, 0)])
            .residual_failure_free();
        assert!(g.is_strongly_connected(pset![0, 1]));
        assert!(g.is_strongly_connected(pset![0, 1, 2]));
        assert!(g.is_strongly_connected(pset![2]));
        assert!(!g.is_strongly_connected(ProcessSet::new()));
    }

    #[test]
    fn sccs_of_line_are_singletons() {
        let g = line_graph(3).residual_failure_free();
        let sccs = g.sccs();
        assert_eq!(sccs, vec![pset![0], pset![1], pset![2]]);
    }

    #[test]
    fn sccs_of_cycle_is_one_component() {
        let g = NetworkGraph::with_channels(3, [chan!(0, 1), chan!(1, 2), chan!(2, 0)])
            .residual_failure_free();
        assert_eq!(g.sccs(), vec![pset![0, 1, 2]]);
        assert_eq!(g.scc_of(ProcessId(1)), pset![0, 1, 2]);
        assert_eq!(g.scc_containing(pset![0, 2]), Some(pset![0, 1, 2]));
    }

    #[test]
    fn scc_containing_rejects_split_sets() {
        let g = line_graph(3).residual_failure_free();
        assert_eq!(g.scc_containing(pset![0, 1]), None);
        assert_eq!(g.scc_containing(pset![1]), Some(pset![1]));
    }

    #[test]
    fn residual_removes_faulty_and_disconnected() {
        let g = NetworkGraph::complete(3);
        let f = FailurePattern::new(3, pset![2], [chan!(0, 1)]).unwrap();
        let r = g.residual(&f);
        assert_eq!(r.alive(), pset![0, 1]);
        assert!(!r.has_channel(chan!(0, 1))); // disconnected
        assert!(r.has_channel(chan!(1, 0))); // still correct
        assert!(!r.has_channel(chan!(0, 2))); // incident to faulty process
        assert_eq!(r.reach_from(ProcessId(2)), ProcessSet::new());
        assert_eq!(r.sccs(), vec![pset![0], pset![1]]);
    }

    #[test]
    fn residual_equality_is_semantic() {
        let g = NetworkGraph::complete(3);
        let f = FailurePattern::new(3, pset![2], [chan!(0, 1)]).unwrap();
        let a = g.residual(&f);
        let b = g.residual(&f);
        // Warm one side's caches; equality must not care.
        let _ = a.reach_from(ProcessId(0));
        let _ = a.sccs();
        assert_eq!(a, b);
        let free = g.residual_failure_free();
        assert_ne!(a, free);
    }

    #[test]
    fn f_availability_and_reachability_follow_definitions() {
        // Figure-1-style: W = {0,1} strongly connected; 2 can only send.
        let g = NetworkGraph::with_channels(3, [chan!(0, 1), chan!(1, 0), chan!(2, 0)])
            .residual_failure_free();
        assert!(g.f_available(pset![0, 1]));
        assert!(!g.f_available(pset![0, 2]));
        assert!(g.f_reachable(pset![0, 1], pset![0, 2]));
        assert!(!g.f_reachable(pset![0, 2], pset![0, 1]));
    }

    #[test]
    fn transitive_closure_matches_reach_from() {
        let g = line_graph(4).residual_failure_free();
        let tc = g.transitive_closure();
        for (p, row) in tc.iter().enumerate() {
            assert_eq!(*row, g.reach_from(ProcessId(p)));
        }
    }

    #[test]
    fn display_lists_channels() {
        let g = NetworkGraph::with_channels(2, [chan!(0, 1)]);
        assert_eq!(g.to_string(), "G(n=2; (a,b))");
    }
}
