//! Network graphs, residual graphs and the graph algorithms the paper's
//! definitions rest on (§3).
//!
//! * The *network graph* `G = (P, C)` has all processes as vertices and all
//!   channels as directed edges.
//! * The *residual graph* `G \ f` of a failure pattern `f = (P, C)` removes
//!   the faulty processes, their incident channels, and the failing
//!   channels.
//! * A set `Q` is *`f`-available* if it contains only correct processes and
//!   is strongly connected in `G \ f` (paths may pass through vertices
//!   outside `Q`).
//! * A set `W` is *`f`-reachable from `R`* if both contain only correct
//!   processes and every member of `W` is reachable from every member of
//!   `R` in `G \ f`.
//!
//! # Performance model
//!
//! This module is the hot core of every decision procedure, so its layout
//! is chosen for sweep workloads (many residual graphs per topology, many
//! reachability queries per residual graph):
//!
//! * [`NetworkGraph`] stores **both** the successor bitset rows `adj` and
//!   the transpose (predecessor) rows `radj`, shared behind an [`Arc`].
//!   [`NetworkGraph::residual`] therefore never clones the adjacency
//!   vectors — a residual graph is the shared base plus an alive-mask;
//!   construction copies and edits only the rows touched by the pattern's
//!   failing channels, and every other row is masked lazily on first use.
//! * Forward and backward reachability are frontier BFS over bitset rows:
//!   `O(V + E/w)` words touched per query (`w` = machine-word bits), and
//!   in particular [`ResidualGraph::reach_to`] walks the transpose rows
//!   instead of the old `O(n²)`-per-round fixpoint that rescanned
//!   `alive - reach`.
//! * Every [`ResidualGraph`] memoizes `reach_from(p)` and `reach_to(p)`
//!   per vertex ([`Cell`]-based, so queries take `&self`). All
//!   higher-level queries — [`ResidualGraph::reach_to_all`],
//!   [`ResidualGraph::all_reach_all`],
//!   [`ResidualGraph::is_strongly_connected`], [`ResidualGraph::sccs`],
//!   [`ResidualGraph::scc_of`] — route through the same caches, so a
//!   residual graph computes at most one forward and one backward BFS per
//!   vertex over its entire lifetime, no matter how many queries are made.
//!
//! **Caching contract:** a `ResidualGraph` is immutable after
//! construction; the caches are pure memoization and never observable in
//! results. Mutating the underlying [`NetworkGraph`] after taking a
//! residual is impossible by construction (the base is copy-on-write:
//! mutators call `Arc::make_mut`, which un-shares the topology instead of
//! editing it under live residuals).

use std::cell::Cell;
use std::fmt;
use std::sync::Arc;

use crate::channel::Channel;
use crate::failure::FailurePattern;
use crate::process::{ProcessId, ProcessSet, MAX_PROCESSES};

/// The shared, immutable payload of a [`NetworkGraph`]: forward and
/// transpose adjacency rows.
#[derive(Clone, PartialEq, Eq, Debug)]
struct Topology {
    n: usize,
    /// `adj[p]` = successors of `p`.
    adj: Vec<ProcessSet>,
    /// `radj[p]` = predecessors of `p` (the transpose rows).
    radj: Vec<ProcessSet>,
}

/// The static network topology `G = (P, C)`.
///
/// Stored as per-vertex successor **and** predecessor bitsets behind a
/// shared [`Arc`], which makes residual-graph construction allocation-free
/// and both directions of reachability cheap bit operations.
///
/// # Examples
///
/// ```
/// use gqs_core::NetworkGraph;
/// let g = NetworkGraph::complete(4);
/// assert_eq!(g.len(), 4);
/// assert_eq!(g.channels().count(), 12); // n(n-1) directed channels
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NetworkGraph {
    core: Arc<Topology>,
}

impl NetworkGraph {
    /// A graph on `n` processes with no channels.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > MAX_PROCESSES`.
    pub fn empty(n: usize) -> Self {
        assert!(n > 0, "a system has at least one process");
        assert!(n <= MAX_PROCESSES, "at most {MAX_PROCESSES} processes are supported");
        NetworkGraph {
            core: Arc::new(Topology {
                n,
                adj: vec![ProcessSet::new(); n],
                radj: vec![ProcessSet::new(); n],
            }),
        }
    }

    /// The complete directed graph on `n` processes — the paper's standard
    /// model, where every ordered pair of distinct processes has a channel.
    pub fn complete(n: usize) -> Self {
        let mut g = Self::empty(n);
        let core = Arc::make_mut(&mut g.core);
        for p in 0..n {
            let row = ProcessSet::full(n).without(ProcessId(p));
            core.adj[p] = row;
            core.radj[p] = row;
        }
        g
    }

    /// Builds a graph from an explicit channel list.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is out of range.
    pub fn with_channels<I>(n: usize, channels: I) -> Self
    where
        I: IntoIterator<Item = Channel>,
    {
        let mut g = Self::empty(n);
        for ch in channels {
            g.add_channel(ch);
        }
        g
    }

    /// Number of processes.
    pub fn len(&self) -> usize {
        self.core.n
    }

    /// `true` iff the graph has no processes (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.core.n == 0
    }

    /// The set of all processes.
    pub fn processes(&self) -> ProcessSet {
        ProcessSet::full(self.core.n)
    }

    /// Adds a channel.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is `>= len()`.
    pub fn add_channel(&mut self, ch: Channel) {
        let n = self.core.n;
        assert!(ch.from.index() < n && ch.to.index() < n, "channel endpoint out of range");
        let core = Arc::make_mut(&mut self.core);
        core.adj[ch.from.index()].insert(ch.to);
        core.radj[ch.to.index()].insert(ch.from);
    }

    /// Removes a channel; returns `true` if it was present.
    pub fn remove_channel(&mut self, ch: Channel) -> bool {
        if !self.has_channel(ch) {
            // Also keeps absent/out-of-range channels from un-sharing the
            // copy-on-write topology.
            return false;
        }
        let core = Arc::make_mut(&mut self.core);
        core.radj[ch.to.index()].remove(ch.from);
        core.adj[ch.from.index()].remove(ch.to)
    }

    /// Whether the channel is present.
    pub fn has_channel(&self, ch: Channel) -> bool {
        ch.from.index() < self.core.n && self.core.adj[ch.from.index()].contains(ch.to)
    }

    /// Successors of `p` in the graph.
    pub fn successors(&self, p: ProcessId) -> ProcessSet {
        self.core.adj[p.index()]
    }

    /// Predecessors of `p` in the graph (the transpose row).
    pub fn predecessors(&self, p: ProcessId) -> ProcessSet {
        self.core.radj[p.index()]
    }

    /// Iterates over all channels.
    pub fn channels(&self) -> impl Iterator<Item = Channel> + '_ {
        (0..self.core.n)
            .flat_map(move |p| self.core.adj[p].iter().map(move |q| Channel::new(ProcessId(p), q)))
    }

    /// The residual graph `G \ f`: faulty processes, their incident
    /// channels, and the channels in `f` are removed.
    ///
    /// The base adjacency is shared, not cloned: the residual graph holds
    /// an `Arc` to this graph's topology, an alive-mask, and edited copies
    /// of only the (few) rows the pattern's channel failures touch.
    ///
    /// # Panics
    ///
    /// Panics if `f` talks about processes outside this graph.
    pub fn residual(&self, f: &FailurePattern) -> ResidualGraph {
        assert!(
            f.universe() == self.core.n,
            "failure pattern is over {} processes but the graph has {}",
            f.universe(),
            self.core.n
        );
        let res = ResidualGraph::new(Arc::clone(&self.core), f.correct());
        for ch in f.channels() {
            res.drop_channel_at_build(ch);
        }
        res
    }

    /// The residual graph of the failure-free pattern (nothing removed).
    pub fn residual_failure_free(&self) -> ResidualGraph {
        ResidualGraph::new(Arc::clone(&self.core), self.processes())
    }
}

impl fmt::Display for NetworkGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "G(n={}; ", self.core.n)?;
        let mut first = true;
        for ch in self.channels() {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{ch}")?;
            first = false;
        }
        write!(f, ")")
    }
}

/// The four per-vertex cache segments packed into one allocation: the
/// effective successor/predecessor rows and the forward/backward reach
/// sets. A segment entry is valid iff its bit is set in the matching
/// validity mask (`n <= MAX_PROCESSES = 128`, so a `u128` mask suffices).
const SEG_ROW: usize = 0;
const SEG_RROW: usize = 1;
const SEG_FWD: usize = 2;
const SEG_BWD: usize = 3;

/// The residual graph `G \ f` of a network graph under a failure pattern.
///
/// Vertices outside [`ResidualGraph::alive`] are isolated and never appear
/// in reachability sets or strongly connected components.
///
/// Internally this is a **view**: the base topology is shared with the
/// originating [`NetworkGraph`] (no adjacency clone). Construction copies
/// and edits only the rows the pattern's channel failures touch; all other
/// rows, and all per-vertex forward/backward reach sets, are derived
/// lazily and memoized (see the module docs for the caching contract).
#[derive(Debug)]
pub struct ResidualGraph {
    base: Arc<Topology>,
    alive: ProcessSet,
    /// One allocation of `4n` entries: segment `s` of vertex `p` lives at
    /// `cache[s * n + p]`.
    cache: Vec<Cell<ProcessSet>>,
    /// Per-segment validity bitmasks over vertices.
    valid: [Cell<u128>; 4],
}

impl Clone for ResidualGraph {
    fn clone(&self) -> Self {
        ResidualGraph {
            base: Arc::clone(&self.base),
            alive: self.alive,
            cache: self.cache.clone(),
            valid: self.valid.clone(),
        }
    }
}

impl PartialEq for ResidualGraph {
    /// Semantic equality: same universe, same alive set, same effective
    /// edges. Memoization state is ignored.
    fn eq(&self, other: &Self) -> bool {
        self.base.n == other.base.n
            && self.alive == other.alive
            && (0..self.base.n)
                .all(|p| self.successors(ProcessId(p)) == other.successors(ProcessId(p)))
    }
}

impl Eq for ResidualGraph {}

impl ResidualGraph {
    fn new(base: Arc<Topology>, alive: ProcessSet) -> Self {
        let n = base.n;
        ResidualGraph {
            base,
            alive,
            cache: vec![Cell::new(ProcessSet::new()); 4 * n],
            valid: [Cell::new(0), Cell::new(0), Cell::new(0), Cell::new(0)],
        }
    }

    #[inline]
    fn seg_get(&self, seg: usize, p: usize) -> Option<ProcessSet> {
        if self.valid[seg].get() & (1u128 << p) != 0 {
            Some(self.cache[seg * self.base.n + p].get())
        } else {
            None
        }
    }

    #[inline]
    fn seg_set(&self, seg: usize, p: usize, value: ProcessSet) {
        self.cache[seg * self.base.n + p].set(value);
        self.valid[seg].set(self.valid[seg].get() | (1u128 << p));
    }

    /// Removes one failing channel while the residual is being built: the
    /// affected rows are materialized (base ∧ alive) and edited in place,
    /// so queries never consult the failure pattern again.
    fn drop_channel_at_build(&self, ch: Channel) {
        let (from, to) = (ch.from.index(), ch.to.index());
        let row = self.seg_get(SEG_ROW, from).unwrap_or(self.base.adj[from] & self.alive);
        self.seg_set(SEG_ROW, from, row.without(ch.to));
        let rrow = self.seg_get(SEG_RROW, to).unwrap_or(self.base.radj[to] & self.alive);
        self.seg_set(SEG_RROW, to, rrow.without(ch.from));
    }

    /// Number of processes in the underlying system (including removed ones).
    pub fn len(&self) -> usize {
        self.base.n
    }

    /// `true` iff the underlying system has no processes (never).
    pub fn is_empty(&self) -> bool {
        self.base.n == 0
    }

    /// The set of correct (non-removed) processes.
    pub fn alive(&self) -> ProcessSet {
        self.alive
    }

    /// Successors of `p` among alive processes.
    #[inline]
    pub fn successors(&self, p: ProcessId) -> ProcessSet {
        if !self.alive.contains(p) {
            return ProcessSet::new();
        }
        if let Some(row) = self.seg_get(SEG_ROW, p.index()) {
            return row;
        }
        let row = self.base.adj[p.index()] & self.alive;
        self.seg_set(SEG_ROW, p.index(), row);
        row
    }

    /// Predecessors of `p` among alive processes (transpose row).
    #[inline]
    pub fn predecessors(&self, p: ProcessId) -> ProcessSet {
        if !self.alive.contains(p) {
            return ProcessSet::new();
        }
        if let Some(row) = self.seg_get(SEG_RROW, p.index()) {
            return row;
        }
        let row = self.base.radj[p.index()] & self.alive;
        self.seg_set(SEG_RROW, p.index(), row);
        row
    }

    /// Whether the channel survives in the residual graph.
    pub fn has_channel(&self, ch: Channel) -> bool {
        self.successors(ch.from).contains(ch.to)
    }

    /// The set of vertices reachable from `p` (including `p` itself, if
    /// alive; a vertex always reaches itself via the empty path).
    ///
    /// Memoized: the BFS runs at most once per vertex per residual graph.
    pub fn reach_from(&self, p: ProcessId) -> ProcessSet {
        if !self.alive.contains(p) {
            return ProcessSet::new();
        }
        if let Some(cached) = self.seg_get(SEG_FWD, p.index()) {
            return cached;
        }
        let mut reach = ProcessSet::singleton(p);
        let mut frontier = reach;
        while !frontier.is_empty() {
            let mut next = ProcessSet::new();
            for q in frontier {
                next |= self.successors(q);
            }
            frontier = next - reach;
            reach |= next;
        }
        self.seg_set(SEG_FWD, p.index(), reach);
        reach
    }

    /// The set of vertices that can reach `p` (including `p` itself).
    ///
    /// A frontier BFS over the transpose rows — `O(V + E/w)` words, not
    /// the quadratic fixpoint of earlier revisions — and memoized like
    /// [`ResidualGraph::reach_from`].
    pub fn reach_to(&self, p: ProcessId) -> ProcessSet {
        if !self.alive.contains(p) {
            return ProcessSet::new();
        }
        if let Some(cached) = self.seg_get(SEG_BWD, p.index()) {
            return cached;
        }
        let mut reach = ProcessSet::singleton(p);
        let mut frontier = reach;
        while !frontier.is_empty() {
            let mut next = ProcessSet::new();
            for q in frontier {
                next |= self.predecessors(q);
            }
            frontier = next - reach;
            reach |= next;
        }
        self.seg_set(SEG_BWD, p.index(), reach);
        reach
    }

    /// The set of vertices that can reach **every** member of `set`.
    ///
    /// Returns the empty set if `set` is empty (vacuous universal
    /// quantification is deliberately rejected: a read quorum must be
    /// nonempty) or contains dead vertices.
    pub fn reach_to_all(&self, set: ProcessSet) -> ProcessSet {
        if set.is_empty() || !set.is_subset(self.alive) {
            return ProcessSet::new();
        }
        let mut acc = self.alive;
        for p in set {
            acc &= self.reach_to(p);
            if acc.is_empty() {
                break;
            }
        }
        acc
    }

    /// Whether every member of `to` is reachable from every member of
    /// `from` (the core of the paper's `f`-reachability).
    pub fn all_reach_all(&self, from: ProcessSet, to: ProcessSet) -> bool {
        if from.is_empty() || to.is_empty() {
            return false;
        }
        if !from.is_subset(self.alive) || !to.is_subset(self.alive) {
            return false;
        }
        from.iter().all(|p| to.is_subset(self.reach_from(p)))
    }

    /// Whether `set` is strongly connected in the residual graph: every
    /// pair of members is mutually reachable (paths may pass through
    /// vertices outside `set`). Singletons are strongly connected; the
    /// empty set is not (quorums are nonempty).
    pub fn is_strongly_connected(&self, set: ProcessSet) -> bool {
        if set.is_empty() || !set.is_subset(self.alive) {
            return false;
        }
        set.iter().all(|p| set.is_subset(self.reach_from(p)))
    }

    /// The strongly connected components of the alive part of the graph,
    /// each as a [`ProcessSet`]. Singletons are included. The order is
    /// by smallest member.
    ///
    /// Components are intersections of the memoized forward and backward
    /// reach sets, so repeated calls (and interleaved reachability
    /// queries) share all BFS work.
    pub fn sccs(&self) -> Vec<ProcessSet> {
        let mut assigned = ProcessSet::new();
        let mut out = Vec::new();
        for p in self.alive {
            if assigned.contains(p) {
                continue;
            }
            let scc = self.scc_of(p);
            assigned |= scc;
            out.push(scc);
        }
        out
    }

    /// The strongly connected component containing `p`, or the empty set if
    /// `p` is not alive.
    pub fn scc_of(&self, p: ProcessId) -> ProcessSet {
        if !self.alive.contains(p) {
            return ProcessSet::new();
        }
        let rf = self.reach_from(p);
        let rt = self.reach_to(p);
        let scc = rf & rt;
        // Every member of one SCC has the same forward and backward reach
        // sets; seed their caches so the component costs two BFS total, not
        // two per member.
        for q in scc.without(p) {
            self.seg_set(SEG_FWD, q.index(), rf);
            self.seg_set(SEG_BWD, q.index(), rt);
        }
        scc
    }

    /// The smallest strongly connected component containing the whole of
    /// `set`, if one exists (Proposition 1 uses this to define `U_f`).
    pub fn scc_containing(&self, set: ProcessSet) -> Option<ProcessSet> {
        let p = set.first()?;
        let scc = self.scc_of(p);
        if set.is_subset(scc) {
            Some(scc)
        } else {
            None
        }
    }

    /// Transitive closure: `closure[p]` is the forward reach set of `p`.
    pub fn transitive_closure(&self) -> Vec<ProcessSet> {
        (0..self.base.n).map(|p| self.reach_from(ProcessId(p))).collect()
    }

    /// Whether `w` is `f`-available: only correct processes, strongly
    /// connected in this residual graph (§3).
    pub fn f_available(&self, w: ProcessSet) -> bool {
        self.is_strongly_connected(w)
    }

    /// Whether `w` is `f`-reachable from `r` (§3): both contain only
    /// correct processes and every member of `w` is reachable from every
    /// member of `r`.
    pub fn f_reachable(&self, w: ProcessSet, r: ProcessSet) -> bool {
        self.all_reach_all(r, w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{chan, pset};

    fn line_graph(n: usize) -> NetworkGraph {
        // 0 -> 1 -> 2 -> ... -> n-1
        NetworkGraph::with_channels(n, (0..n - 1).map(|i| chan!(i, i + 1)))
    }

    #[test]
    fn complete_graph_channel_count() {
        let g = NetworkGraph::complete(5);
        assert_eq!(g.channels().count(), 20);
        assert!(g.has_channel(chan!(0, 4)));
        assert!(g.has_channel(chan!(4, 0)));
    }

    #[test]
    fn add_remove_channel() {
        let mut g = NetworkGraph::empty(3);
        g.add_channel(chan!(0, 1));
        assert!(g.has_channel(chan!(0, 1)));
        assert!(!g.has_channel(chan!(1, 0)));
        assert!(g.remove_channel(chan!(0, 1)));
        assert!(!g.remove_channel(chan!(0, 1)));
    }

    #[test]
    fn remove_out_of_range_channel_is_a_no_op() {
        let mut g = NetworkGraph::empty(3);
        assert!(!g.remove_channel(chan!(5, 0)));
        assert!(!g.remove_channel(chan!(0, 5)));
    }

    #[test]
    fn transpose_tracks_mutations() {
        let mut g = NetworkGraph::empty(3);
        g.add_channel(chan!(0, 1));
        g.add_channel(chan!(2, 1));
        assert_eq!(g.predecessors(ProcessId(1)), pset![0, 2]);
        assert!(g.remove_channel(chan!(0, 1)));
        assert_eq!(g.predecessors(ProcessId(1)), pset![2]);
        assert_eq!(g.successors(ProcessId(2)), pset![1]);
    }

    #[test]
    fn mutating_a_graph_does_not_disturb_live_residuals() {
        // Copy-on-write: the residual keeps the topology it was taken from.
        let mut g = NetworkGraph::with_channels(3, [chan!(0, 1), chan!(1, 2)]);
        let res = g.residual_failure_free();
        g.remove_channel(chan!(0, 1));
        g.add_channel(chan!(2, 0));
        assert!(res.has_channel(chan!(0, 1)));
        assert!(!res.has_channel(chan!(2, 0)));
        assert_eq!(res.reach_from(ProcessId(0)), pset![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "endpoint out of range")]
    fn add_channel_out_of_range_panics() {
        let mut g = NetworkGraph::empty(2);
        g.add_channel(chan!(0, 5));
    }

    #[test]
    fn reachability_on_a_line() {
        let g = line_graph(4).residual_failure_free();
        assert_eq!(g.reach_from(ProcessId(0)), pset![0, 1, 2, 3]);
        assert_eq!(g.reach_from(ProcessId(2)), pset![2, 3]);
        assert_eq!(g.reach_to(ProcessId(3)), pset![0, 1, 2, 3]);
        assert_eq!(g.reach_to(ProcessId(0)), pset![0]);
        assert!(g.all_reach_all(pset![0, 1], pset![2, 3]));
        assert!(!g.all_reach_all(pset![1], pset![0]));
    }

    #[test]
    fn memoized_queries_are_stable() {
        let g = line_graph(5).residual_failure_free();
        // First call populates the cache; the second must agree exactly.
        for p in 0..5 {
            assert_eq!(g.reach_from(ProcessId(p)), g.reach_from(ProcessId(p)));
            assert_eq!(g.reach_to(ProcessId(p)), g.reach_to(ProcessId(p)));
        }
        assert_eq!(g.sccs(), g.sccs());
    }

    #[test]
    fn reach_to_all_intersects_members() {
        let g = line_graph(4).residual_failure_free();
        assert_eq!(g.reach_to_all(pset![2]), pset![0, 1, 2]);
        assert_eq!(g.reach_to_all(pset![1, 3]), pset![0, 1]);
        assert_eq!(g.reach_to_all(ProcessSet::new()), ProcessSet::new());
    }

    #[test]
    fn strong_connectivity_via_outside_vertices() {
        // 0 <-> 1 through 2: 0->2->1 and 1->0.
        let g = NetworkGraph::with_channels(3, [chan!(0, 2), chan!(2, 1), chan!(1, 0)])
            .residual_failure_free();
        assert!(g.is_strongly_connected(pset![0, 1]));
        assert!(g.is_strongly_connected(pset![0, 1, 2]));
        assert!(g.is_strongly_connected(pset![2]));
        assert!(!g.is_strongly_connected(ProcessSet::new()));
    }

    #[test]
    fn sccs_of_line_are_singletons() {
        let g = line_graph(3).residual_failure_free();
        let sccs = g.sccs();
        assert_eq!(sccs, vec![pset![0], pset![1], pset![2]]);
    }

    #[test]
    fn sccs_of_cycle_is_one_component() {
        let g = NetworkGraph::with_channels(3, [chan!(0, 1), chan!(1, 2), chan!(2, 0)])
            .residual_failure_free();
        assert_eq!(g.sccs(), vec![pset![0, 1, 2]]);
        assert_eq!(g.scc_of(ProcessId(1)), pset![0, 1, 2]);
        assert_eq!(g.scc_containing(pset![0, 2]), Some(pset![0, 1, 2]));
    }

    #[test]
    fn scc_containing_rejects_split_sets() {
        let g = line_graph(3).residual_failure_free();
        assert_eq!(g.scc_containing(pset![0, 1]), None);
        assert_eq!(g.scc_containing(pset![1]), Some(pset![1]));
    }

    #[test]
    fn residual_removes_faulty_and_disconnected() {
        let g = NetworkGraph::complete(3);
        let f = FailurePattern::new(3, pset![2], [chan!(0, 1)]).unwrap();
        let r = g.residual(&f);
        assert_eq!(r.alive(), pset![0, 1]);
        assert!(!r.has_channel(chan!(0, 1))); // disconnected
        assert!(r.has_channel(chan!(1, 0))); // still correct
        assert!(!r.has_channel(chan!(0, 2))); // incident to faulty process
        assert_eq!(r.reach_from(ProcessId(2)), ProcessSet::new());
        assert_eq!(r.sccs(), vec![pset![0], pset![1]]);
    }

    #[test]
    fn residual_equality_is_semantic() {
        let g = NetworkGraph::complete(3);
        let f = FailurePattern::new(3, pset![2], [chan!(0, 1)]).unwrap();
        let a = g.residual(&f);
        let b = g.residual(&f);
        // Warm one side's caches; equality must not care.
        let _ = a.reach_from(ProcessId(0));
        let _ = a.sccs();
        assert_eq!(a, b);
        let free = g.residual_failure_free();
        assert_ne!(a, free);
    }

    #[test]
    fn f_availability_and_reachability_follow_definitions() {
        // Figure-1-style: W = {0,1} strongly connected; 2 can only send.
        let g = NetworkGraph::with_channels(3, [chan!(0, 1), chan!(1, 0), chan!(2, 0)])
            .residual_failure_free();
        assert!(g.f_available(pset![0, 1]));
        assert!(!g.f_available(pset![0, 2]));
        assert!(g.f_reachable(pset![0, 1], pset![0, 2]));
        assert!(!g.f_reachable(pset![0, 2], pset![0, 1]));
    }

    #[test]
    fn transitive_closure_matches_reach_from() {
        let g = line_graph(4).residual_failure_free();
        let tc = g.transitive_closure();
        for (p, row) in tc.iter().enumerate() {
            assert_eq!(*row, g.reach_from(ProcessId(p)));
        }
    }

    #[test]
    fn display_lists_channels() {
        let g = NetworkGraph::with_channels(2, [chan!(0, 1)]);
        assert_eq!(g.to_string(), "G(n=2; (a,b))");
    }
}
