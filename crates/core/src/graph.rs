//! Network graphs, residual graphs and the graph algorithms the paper's
//! definitions rest on (§3).
//!
//! * The *network graph* `G = (P, C)` has all processes as vertices and all
//!   channels as directed edges.
//! * The *residual graph* `G \ f` of a failure pattern `f = (P, C)` removes
//!   the faulty processes, their incident channels, and the failing
//!   channels.
//! * A set `Q` is *`f`-available* if it contains only correct processes and
//!   is strongly connected in `G \ f` (paths may pass through vertices
//!   outside `Q`).
//! * A set `W` is *`f`-reachable from `R`* if both contain only correct
//!   processes and every member of `W` is reachable from every member of
//!   `R` in `G \ f`.

use std::fmt;

use crate::channel::Channel;
use crate::failure::FailurePattern;
use crate::process::{ProcessId, ProcessSet, MAX_PROCESSES};

/// The static network topology `G = (P, C)`.
///
/// Stored as per-vertex successor bitsets, which makes residual-graph
/// construction and reachability computations cheap bit operations.
///
/// # Examples
///
/// ```
/// use gqs_core::NetworkGraph;
/// let g = NetworkGraph::complete(4);
/// assert_eq!(g.len(), 4);
/// assert_eq!(g.channels().count(), 12); // n(n-1) directed channels
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NetworkGraph {
    n: usize,
    adj: Vec<ProcessSet>,
}

impl NetworkGraph {
    /// A graph on `n` processes with no channels.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > MAX_PROCESSES`.
    pub fn empty(n: usize) -> Self {
        assert!(n > 0, "a system has at least one process");
        assert!(n <= MAX_PROCESSES, "at most {MAX_PROCESSES} processes are supported");
        NetworkGraph { n, adj: vec![ProcessSet::new(); n] }
    }

    /// The complete directed graph on `n` processes — the paper's standard
    /// model, where every ordered pair of distinct processes has a channel.
    pub fn complete(n: usize) -> Self {
        let mut g = Self::empty(n);
        for p in 0..n {
            g.adj[p] = ProcessSet::full(n).without(ProcessId(p));
        }
        g
    }

    /// Builds a graph from an explicit channel list.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is out of range.
    pub fn with_channels<I>(n: usize, channels: I) -> Self
    where
        I: IntoIterator<Item = Channel>,
    {
        let mut g = Self::empty(n);
        for ch in channels {
            g.add_channel(ch);
        }
        g
    }

    /// Number of processes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` iff the graph has no processes (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The set of all processes.
    pub fn processes(&self) -> ProcessSet {
        ProcessSet::full(self.n)
    }

    /// Adds a channel.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is `>= len()`.
    pub fn add_channel(&mut self, ch: Channel) {
        assert!(ch.from.index() < self.n && ch.to.index() < self.n, "channel endpoint out of range");
        self.adj[ch.from.index()].insert(ch.to);
    }

    /// Removes a channel; returns `true` if it was present.
    pub fn remove_channel(&mut self, ch: Channel) -> bool {
        if ch.from.index() >= self.n {
            return false;
        }
        self.adj[ch.from.index()].remove(ch.to)
    }

    /// Whether the channel is present.
    pub fn has_channel(&self, ch: Channel) -> bool {
        ch.from.index() < self.n && self.adj[ch.from.index()].contains(ch.to)
    }

    /// Successors of `p` in the graph.
    pub fn successors(&self, p: ProcessId) -> ProcessSet {
        self.adj[p.index()]
    }

    /// Iterates over all channels.
    pub fn channels(&self) -> impl Iterator<Item = Channel> + '_ {
        (0..self.n).flat_map(move |p| {
            self.adj[p].iter().map(move |q| Channel::new(ProcessId(p), q))
        })
    }

    /// The residual graph `G \ f`: faulty processes, their incident
    /// channels, and the channels in `f` are removed.
    ///
    /// # Panics
    ///
    /// Panics if `f` talks about processes outside this graph.
    pub fn residual(&self, f: &FailurePattern) -> ResidualGraph {
        assert!(
            f.universe() == self.n,
            "failure pattern is over {} processes but the graph has {}",
            f.universe(),
            self.n
        );
        let alive = f.correct();
        let mut adj = self.adj.clone();
        for p in 0..self.n {
            if !alive.contains(ProcessId(p)) {
                adj[p] = ProcessSet::new();
            } else {
                adj[p] &= alive;
            }
        }
        for ch in f.channels() {
            adj[ch.from.index()].remove(ch.to);
        }
        ResidualGraph { n: self.n, adj, alive }
    }

    /// The residual graph of the failure-free pattern (nothing removed).
    pub fn residual_failure_free(&self) -> ResidualGraph {
        ResidualGraph { n: self.n, adj: self.adj.clone(), alive: self.processes() }
    }
}

impl fmt::Display for NetworkGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "G(n={}; ", self.n)?;
        let mut first = true;
        for ch in self.channels() {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{ch}")?;
            first = false;
        }
        write!(f, ")")
    }
}

/// The residual graph `G \ f` of a network graph under a failure pattern.
///
/// Vertices outside [`ResidualGraph::alive`] are isolated and never appear
/// in reachability sets or strongly connected components.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ResidualGraph {
    n: usize,
    adj: Vec<ProcessSet>,
    alive: ProcessSet,
}

impl ResidualGraph {
    /// Number of processes in the underlying system (including removed ones).
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` iff the underlying system has no processes (never).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The set of correct (non-removed) processes.
    pub fn alive(&self) -> ProcessSet {
        self.alive
    }

    /// Successors of `p` among alive processes.
    pub fn successors(&self, p: ProcessId) -> ProcessSet {
        if self.alive.contains(p) {
            self.adj[p.index()]
        } else {
            ProcessSet::new()
        }
    }

    /// Whether the channel survives in the residual graph.
    pub fn has_channel(&self, ch: Channel) -> bool {
        self.successors(ch.from).contains(ch.to)
    }

    /// The set of vertices reachable from `p` (including `p` itself, if
    /// alive; a vertex always reaches itself via the empty path).
    pub fn reach_from(&self, p: ProcessId) -> ProcessSet {
        if !self.alive.contains(p) {
            return ProcessSet::new();
        }
        let mut reach = ProcessSet::singleton(p);
        let mut frontier = reach;
        while !frontier.is_empty() {
            let mut next = ProcessSet::new();
            for q in frontier {
                next |= self.adj[q.index()];
            }
            frontier = next - reach;
            reach |= next;
        }
        reach
    }

    /// The set of vertices that can reach `p` (including `p` itself).
    pub fn reach_to(&self, p: ProcessId) -> ProcessSet {
        if !self.alive.contains(p) {
            return ProcessSet::new();
        }
        let mut reach = ProcessSet::singleton(p);
        loop {
            let mut grew = false;
            for q in self.alive - reach {
                if self.adj[q.index()].intersects(reach) {
                    reach.insert(q);
                    grew = true;
                }
            }
            if !grew {
                return reach;
            }
        }
    }

    /// The set of vertices that can reach **every** member of `set`.
    ///
    /// Returns the empty set if `set` is empty (vacuous universal
    /// quantification is deliberately rejected: a read quorum must be
    /// nonempty) or contains dead vertices.
    pub fn reach_to_all(&self, set: ProcessSet) -> ProcessSet {
        if set.is_empty() || !set.is_subset(self.alive) {
            return ProcessSet::new();
        }
        let mut acc = self.alive;
        for p in set {
            acc &= self.reach_to(p);
            if acc.is_empty() {
                break;
            }
        }
        acc
    }

    /// Whether every member of `to` is reachable from every member of
    /// `from` (the core of the paper's `f`-reachability).
    pub fn all_reach_all(&self, from: ProcessSet, to: ProcessSet) -> bool {
        if from.is_empty() || to.is_empty() {
            return false;
        }
        if !from.is_subset(self.alive) || !to.is_subset(self.alive) {
            return false;
        }
        from.iter().all(|p| to.is_subset(self.reach_from(p)))
    }

    /// Whether `set` is strongly connected in the residual graph: every
    /// pair of members is mutually reachable (paths may pass through
    /// vertices outside `set`). Singletons are strongly connected; the
    /// empty set is not (quorums are nonempty).
    pub fn is_strongly_connected(&self, set: ProcessSet) -> bool {
        if set.is_empty() || !set.is_subset(self.alive) {
            return false;
        }
        set.iter().all(|p| set.is_subset(self.reach_from(p)))
    }

    /// The strongly connected components of the alive part of the graph,
    /// each as a [`ProcessSet`]. Singletons are included. The order is
    /// by smallest member.
    pub fn sccs(&self) -> Vec<ProcessSet> {
        let mut assigned = ProcessSet::new();
        let mut out = Vec::new();
        // Cache forward reach sets.
        let mut fwd: Vec<Option<ProcessSet>> = vec![None; self.n];
        for p in self.alive {
            if assigned.contains(p) {
                continue;
            }
            let rf = *fwd[p.index()].get_or_insert_with(|| self.reach_from(p));
            let mut scc = ProcessSet::singleton(p);
            for q in rf.without(p) {
                let rq = *fwd[q.index()].get_or_insert_with(|| self.reach_from(q));
                if rq.contains(p) {
                    scc.insert(q);
                }
            }
            assigned |= scc;
            out.push(scc);
        }
        out
    }

    /// The strongly connected component containing `p`, or the empty set if
    /// `p` is not alive.
    pub fn scc_of(&self, p: ProcessId) -> ProcessSet {
        if !self.alive.contains(p) {
            return ProcessSet::new();
        }
        self.reach_from(p) & self.reach_to(p)
    }

    /// The smallest strongly connected component containing the whole of
    /// `set`, if one exists (Proposition 1 uses this to define `U_f`).
    pub fn scc_containing(&self, set: ProcessSet) -> Option<ProcessSet> {
        let p = set.first()?;
        let scc = self.scc_of(p);
        if set.is_subset(scc) {
            Some(scc)
        } else {
            None
        }
    }

    /// Transitive closure: `closure[p]` is the forward reach set of `p`.
    pub fn transitive_closure(&self) -> Vec<ProcessSet> {
        (0..self.n).map(|p| self.reach_from(ProcessId(p))).collect()
    }

    /// Whether `w` is `f`-available: only correct processes, strongly
    /// connected in this residual graph (§3).
    pub fn f_available(&self, w: ProcessSet) -> bool {
        self.is_strongly_connected(w)
    }

    /// Whether `w` is `f`-reachable from `r` (§3): both contain only
    /// correct processes and every member of `w` is reachable from every
    /// member of `r`.
    pub fn f_reachable(&self, w: ProcessSet, r: ProcessSet) -> bool {
        self.all_reach_all(r, w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{chan, pset};

    fn line_graph(n: usize) -> NetworkGraph {
        // 0 -> 1 -> 2 -> ... -> n-1
        NetworkGraph::with_channels(n, (0..n - 1).map(|i| chan!(i, i + 1)))
    }

    #[test]
    fn complete_graph_channel_count() {
        let g = NetworkGraph::complete(5);
        assert_eq!(g.channels().count(), 20);
        assert!(g.has_channel(chan!(0, 4)));
        assert!(g.has_channel(chan!(4, 0)));
    }

    #[test]
    fn add_remove_channel() {
        let mut g = NetworkGraph::empty(3);
        g.add_channel(chan!(0, 1));
        assert!(g.has_channel(chan!(0, 1)));
        assert!(!g.has_channel(chan!(1, 0)));
        assert!(g.remove_channel(chan!(0, 1)));
        assert!(!g.remove_channel(chan!(0, 1)));
    }

    #[test]
    #[should_panic(expected = "endpoint out of range")]
    fn add_channel_out_of_range_panics() {
        let mut g = NetworkGraph::empty(2);
        g.add_channel(chan!(0, 5));
    }

    #[test]
    fn reachability_on_a_line() {
        let g = line_graph(4).residual_failure_free();
        assert_eq!(g.reach_from(ProcessId(0)), pset![0, 1, 2, 3]);
        assert_eq!(g.reach_from(ProcessId(2)), pset![2, 3]);
        assert_eq!(g.reach_to(ProcessId(3)), pset![0, 1, 2, 3]);
        assert_eq!(g.reach_to(ProcessId(0)), pset![0]);
        assert!(g.all_reach_all(pset![0, 1], pset![2, 3]));
        assert!(!g.all_reach_all(pset![1], pset![0]));
    }

    #[test]
    fn reach_to_all_intersects_members() {
        let g = line_graph(4).residual_failure_free();
        assert_eq!(g.reach_to_all(pset![2]), pset![0, 1, 2]);
        assert_eq!(g.reach_to_all(pset![1, 3]), pset![0, 1]);
        assert_eq!(g.reach_to_all(ProcessSet::new()), ProcessSet::new());
    }

    #[test]
    fn strong_connectivity_via_outside_vertices() {
        // 0 <-> 1 through 2: 0->2->1 and 1->0.
        let g = NetworkGraph::with_channels(3, [chan!(0, 2), chan!(2, 1), chan!(1, 0)])
            .residual_failure_free();
        assert!(g.is_strongly_connected(pset![0, 1]));
        assert!(g.is_strongly_connected(pset![0, 1, 2]));
        assert!(g.is_strongly_connected(pset![2]));
        assert!(!g.is_strongly_connected(ProcessSet::new()));
    }

    #[test]
    fn sccs_of_line_are_singletons() {
        let g = line_graph(3).residual_failure_free();
        let sccs = g.sccs();
        assert_eq!(sccs, vec![pset![0], pset![1], pset![2]]);
    }

    #[test]
    fn sccs_of_cycle_is_one_component() {
        let g = NetworkGraph::with_channels(3, [chan!(0, 1), chan!(1, 2), chan!(2, 0)])
            .residual_failure_free();
        assert_eq!(g.sccs(), vec![pset![0, 1, 2]]);
        assert_eq!(g.scc_of(ProcessId(1)), pset![0, 1, 2]);
        assert_eq!(g.scc_containing(pset![0, 2]), Some(pset![0, 1, 2]));
    }

    #[test]
    fn scc_containing_rejects_split_sets() {
        let g = line_graph(3).residual_failure_free();
        assert_eq!(g.scc_containing(pset![0, 1]), None);
        assert_eq!(g.scc_containing(pset![1]), Some(pset![1]));
    }

    #[test]
    fn residual_removes_faulty_and_disconnected() {
        let g = NetworkGraph::complete(3);
        let f = FailurePattern::new(3, pset![2], [chan!(0, 1)]).unwrap();
        let r = g.residual(&f);
        assert_eq!(r.alive(), pset![0, 1]);
        assert!(!r.has_channel(chan!(0, 1))); // disconnected
        assert!(r.has_channel(chan!(1, 0))); // still correct
        assert!(!r.has_channel(chan!(0, 2))); // incident to faulty process
        assert_eq!(r.reach_from(ProcessId(2)), ProcessSet::new());
        assert_eq!(r.sccs(), vec![pset![0], pset![1]]);
    }

    #[test]
    fn f_availability_and_reachability_follow_definitions() {
        // Figure-1-style: W = {0,1} strongly connected; 2 can only send.
        let g = NetworkGraph::with_channels(3, [chan!(0, 1), chan!(1, 0), chan!(2, 0)])
            .residual_failure_free();
        assert!(g.f_available(pset![0, 1]));
        assert!(!g.f_available(pset![0, 2]));
        assert!(g.f_reachable(pset![0, 1], pset![0, 2]));
        assert!(!g.f_reachable(pset![0, 2], pset![0, 1]));
    }

    #[test]
    fn transitive_closure_matches_reach_from() {
        let g = line_graph(4).residual_failure_free();
        let tc = g.transitive_closure();
        for p in 0..4 {
            assert_eq!(tc[p], g.reach_from(ProcessId(p)));
        }
    }

    #[test]
    fn display_lists_channels() {
        let g = NetworkGraph::with_channels(2, [chan!(0, 1)]);
        assert_eq!(g.to_string(), "G(n=2; (a,b))");
    }
}
