//! Property-based tests for the core framework: graph algorithms against
//! naive oracles, finder soundness/completeness, and Proposition 1.

use proptest::prelude::*;

use gqs_core::finder::{find_gqs, gqs_exists, gqs_exists_brute_force};
use gqs_core::{
    Channel, FailProneSystem, FailurePattern, NetworkGraph, ProcessId, ProcessSet,
};

/// A raw graph description: `n` and a list of directed edges.
#[derive(Clone, Debug)]
struct RawGraph {
    n: usize,
    edges: Vec<(usize, usize)>,
}

fn raw_graph(max_n: usize) -> impl Strategy<Value = RawGraph> {
    (2..=max_n).prop_flat_map(|n| {
        let pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|a| (0..n).filter(move |b| a != *b).map(move |b| (a, b)))
            .collect();
        proptest::sample::subsequence(pairs.clone(), 0..=pairs.len())
            .prop_map(move |edges| RawGraph { n, edges })
    })
}

fn build(raw: &RawGraph) -> NetworkGraph {
    NetworkGraph::with_channels(
        raw.n,
        raw.edges.iter().map(|&(a, b)| Channel::new(ProcessId(a), ProcessId(b))),
    )
}

/// Independent reachability oracle: plain DFS over an adjacency list.
fn oracle_reach(raw: &RawGraph, from: usize) -> Vec<bool> {
    let mut adj = vec![Vec::new(); raw.n];
    for &(a, b) in &raw.edges {
        adj[a].push(b);
    }
    let mut seen = vec![false; raw.n];
    let mut stack = vec![from];
    seen[from] = true;
    while let Some(v) = stack.pop() {
        for &w in &adj[v] {
            if !seen[w] {
                seen[w] = true;
                stack.push(w);
            }
        }
    }
    seen
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `reach_from` agrees with a naive DFS oracle.
    #[test]
    fn reachability_matches_oracle(raw in raw_graph(7)) {
        let g = build(&raw).residual_failure_free();
        for p in 0..raw.n {
            let reach = g.reach_from(ProcessId(p));
            let oracle = oracle_reach(&raw, p);
            for q in 0..raw.n {
                prop_assert_eq!(
                    reach.contains(ProcessId(q)),
                    oracle[q],
                    "reach({}) vs oracle at {}", p, q
                );
            }
        }
    }

    /// `reach_to` is the converse of `reach_from`.
    #[test]
    fn reach_to_is_converse(raw in raw_graph(6)) {
        let g = build(&raw).residual_failure_free();
        for p in 0..raw.n {
            for q in 0..raw.n {
                prop_assert_eq!(
                    g.reach_from(ProcessId(p)).contains(ProcessId(q)),
                    g.reach_to(ProcessId(q)).contains(ProcessId(p))
                );
            }
        }
    }

    /// SCCs partition the alive vertices, each is strongly connected, and
    /// no union of two distinct SCCs is.
    #[test]
    fn sccs_partition_and_maximal(raw in raw_graph(6)) {
        let g = build(&raw).residual_failure_free();
        let sccs = g.sccs();
        let mut union = ProcessSet::new();
        for scc in &sccs {
            prop_assert!(!scc.is_empty());
            prop_assert!(scc.is_disjoint(union));
            prop_assert!(g.is_strongly_connected(*scc));
            union |= *scc;
        }
        prop_assert_eq!(union, ProcessSet::full(raw.n));
        for (i, a) in sccs.iter().enumerate() {
            for b in &sccs[i + 1..] {
                prop_assert!(!g.is_strongly_connected(*a | *b), "SCCs must be maximal");
            }
        }
    }

    /// Residual graphs: faulty processes are isolated, failing channels
    /// removed, everything else preserved.
    #[test]
    fn residual_semantics(raw in raw_graph(6), faulty_bits in 0u32..64, chan_sel in proptest::collection::vec(any::<bool>(), 0..64)) {
        let g = build(&raw);
        let faulty: ProcessSet = (0..raw.n).filter(|i| faulty_bits & (1 << i) != 0).collect();
        if faulty == ProcessSet::full(raw.n) {
            return Ok(()); // at least one correct process required below
        }
        let failing: Vec<Channel> = raw
            .edges
            .iter()
            .enumerate()
            .filter(|(i, (a, b))| {
                chan_sel.get(*i).copied().unwrap_or(false)
                    && !faulty.contains(ProcessId(*a))
                    && !faulty.contains(ProcessId(*b))
            })
            .map(|(_, &(a, b))| Channel::new(ProcessId(a), ProcessId(b)))
            .collect();
        let f = FailurePattern::new(raw.n, faulty, failing.clone()).unwrap();
        let res = g.residual(&f);
        prop_assert_eq!(res.alive(), f.correct());
        for &(a, b) in &raw.edges {
            let ch = Channel::new(ProcessId(a), ProcessId(b));
            let should_exist = !ch.touches(faulty) && !failing.contains(&ch);
            prop_assert_eq!(res.has_channel(ch), should_exist, "channel {}", ch);
        }
    }

    /// The backtracking finder and the exhaustive search agree.
    #[test]
    fn finder_agrees_with_brute_force(
        raw in raw_graph(5),
        seeds in proptest::collection::vec((0u32..32, 0u32..1024), 1..4),
    ) {
        let g = build(&raw);
        let n = raw.n;
        let mut patterns = Vec::new();
        for (fbits, cbits) in seeds {
            let faulty: ProcessSet = (0..n).filter(|i| fbits & (1 << i) != 0).collect();
            let channels: Vec<Channel> = raw
                .edges
                .iter()
                .enumerate()
                .filter(|(i, (a, b))| {
                    cbits & (1 << (i % 10)) != 0
                        && !faulty.contains(ProcessId(*a))
                        && !faulty.contains(ProcessId(*b))
                })
                .map(|(_, &(a, b))| Channel::new(ProcessId(a), ProcessId(b)))
                .collect();
            if let Ok(p) = FailurePattern::new(n, faulty, channels) {
                patterns.push(p);
            }
        }
        let fp = FailProneSystem::new(n, patterns).unwrap();
        prop_assert_eq!(gqs_exists(&g, &fp), gqs_exists_brute_force(&g, &fp));
    }

    /// Soundness + Proposition 1: every witness validates and all its U_f
    /// sets are strongly connected.
    #[test]
    fn finder_witnesses_are_valid(
        raw in raw_graph(5),
        fbits in proptest::collection::vec(0u32..32, 1..4),
    ) {
        let g = build(&raw);
        let patterns: Vec<FailurePattern> = fbits
            .iter()
            .filter_map(|bits| {
                let faulty: ProcessSet = (0..raw.n).filter(|i| bits & (1 << i) != 0).collect();
                FailurePattern::crash_only(raw.n, faulty).ok()
            })
            .collect();
        let fp = FailProneSystem::new(raw.n, patterns).unwrap();
        if let Some(w) = find_gqs(&g, &fp) {
            // The construction of GeneralizedQuorumSystem::new validated
            // Consistency + Availability; check Proposition 1 on top.
            for i in 0..fp.len() {
                let u = w.system.u_f(i);
                prop_assert!(!u.is_empty());
                prop_assert!(g.residual(fp.pattern(i)).is_strongly_connected(u));
                prop_assert!(u.is_subset(fp.pattern(i).correct()));
            }
        }
    }

    /// Failure monotonicity: enlarging a failure pattern can only destroy
    /// solvability, never create it.
    #[test]
    fn adding_failures_is_monotone(
        raw in raw_graph(5),
        fbits in 0u32..32,
        extra in 0usize..16,
    ) {
        let g = build(&raw);
        let n = raw.n;
        let faulty: ProcessSet = (0..n).filter(|i| fbits & (1 << i) != 0).collect();
        let Ok(base) = FailurePattern::crash_only(n, faulty) else { return Ok(()) };
        let fp = FailProneSystem::new(n, [base.clone()]).unwrap();
        let solvable_before = gqs_exists(&g, &fp);

        // Enlarge: crash one more process (if any remain).
        let remaining: Vec<ProcessId> = base.correct().iter().collect();
        if remaining.is_empty() {
            return Ok(());
        }
        let extra_p = remaining[extra % remaining.len()];
        let bigger = FailurePattern::crash_only(n, base.faulty().with(extra_p)).unwrap();
        let fp2 = FailProneSystem::new(n, [bigger]).unwrap();
        let solvable_after = gqs_exists(&g, &fp2);
        prop_assert!(
            solvable_before || !solvable_after,
            "a strictly larger pattern became solvable"
        );
    }

    /// ProcessSet algebra laws.
    #[test]
    fn process_set_laws(a_bits in any::<u64>(), b_bits in any::<u64>(), n in 1usize..64) {
        let mask = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
        let a: ProcessSet = (0..n).filter(|i| a_bits & mask & (1 << i) != 0).collect();
        let b: ProcessSet = (0..n).filter(|i| b_bits & mask & (1 << i) != 0).collect();
        prop_assert_eq!(a | b, b | a);
        prop_assert_eq!(a & b, b & a);
        prop_assert_eq!(a - b, a & b.complement(n));
        prop_assert_eq!((a | b).complement(n), a.complement(n) & b.complement(n)); // De Morgan
        prop_assert_eq!(a.is_subset(b), (a - b).is_empty());
        prop_assert_eq!(a.intersects(b), !(a & b).is_empty());
        prop_assert_eq!((a | b).len() + (a & b).len(), a.len() + b.len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Threshold-vs-threshold Consistency arithmetic agrees with explicit
    /// enumeration of all quorums (small n).
    #[test]
    fn threshold_consistency_matches_enumeration(n in 2usize..7, r in 1usize..7, w in 1usize..7) {
        prop_assume!(r <= n && w <= n);
        use gqs_core::QuorumFamily;
        let rt = QuorumFamily::threshold(n, r).unwrap();
        let wt = QuorumFamily::threshold(n, w).unwrap();
        let fast = rt.consistent_with(&wt).is_ok();
        // Oracle: enumerate every pair of subsets of sizes >= r and >= w.
        let mut oracle = true;
        'outer: for rbits in 0u32..(1 << n) {
            let rset: ProcessSet = (0..n).filter(|i| rbits & (1 << i) != 0).collect();
            if rset.len() < r {
                continue;
            }
            for wbits in 0u32..(1 << n) {
                let wset: ProcessSet = (0..n).filter(|i| wbits & (1 << i) != 0).collect();
                if wset.len() < w {
                    continue;
                }
                if rset.is_disjoint(wset) {
                    oracle = false;
                    break 'outer;
                }
            }
        }
        prop_assert_eq!(fast, oracle, "n={} r={} w={}", n, r, w);
    }

    /// For threshold write families, `available_writes` (SCC-based) agrees
    /// with brute-force enumeration of available quorums.
    #[test]
    fn threshold_available_writes_matches_enumeration(raw in raw_graph(5), w in 1usize..5) {
        prop_assume!(w <= raw.n);
        use gqs_core::QuorumFamily;
        let g = build(&raw);
        let res = g.residual_failure_free();
        let fam = QuorumFamily::threshold(raw.n, w).unwrap();
        let sccs = fam.available_writes(&res);
        // Oracle: some w-subset is f-available iff some SCC has >= w members.
        let mut any_available = false;
        for bits in 0u32..(1 << raw.n) {
            let set: ProcessSet = (0..raw.n).filter(|i| bits & (1 << i) != 0).collect();
            if set.len() >= w && res.is_strongly_connected(set) {
                any_available = true;
                break;
            }
        }
        prop_assert_eq!(!sccs.is_empty(), any_available);
        for s in &sccs {
            prop_assert!(s.len() >= w);
            prop_assert!(res.is_strongly_connected(*s));
        }
    }
}
