//! Shared helpers for the core integration tests: a small seeded RNG and
//! random graph/failure generators.
//!
//! The RNG is a local SplitMix64 (same algorithm as `gqs_simnet::SplitMix64`)
//! rather than a dev-dependency on `gqs-simnet`, to keep `gqs-core`'s test
//! build free of the dev-dependency cycle core → simnet → core.

#![allow(dead_code)] // each integration-test binary uses a different subset

use gqs_core::{Channel, FailProneSystem, FailurePattern, NetworkGraph, ProcessId, ProcessSet};

/// SplitMix64 (Steele, Lea, Flood 2014): tiny, seedable, and plenty random
/// for test-case generation.
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `lo..=hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi);
        let span = hi - lo + 1;
        lo + self.next_u64() % span
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64 <= p
    }
}

/// A raw graph description: `n` and a list of directed edges.
#[derive(Clone, Debug)]
pub struct RawGraph {
    pub n: usize,
    pub edges: Vec<(usize, usize)>,
}

/// A random digraph on `2..=max_n` vertices with a random edge density.
pub fn random_raw(max_n: usize, rng: &mut SplitMix64) -> RawGraph {
    let n = rng.range(2, max_n as u64) as usize;
    let p = rng.range(0, 100) as f64 / 100.0;
    let mut edges = Vec::new();
    for a in 0..n {
        for b in 0..n {
            if a != b && rng.chance(p) {
                edges.push((a, b));
            }
        }
    }
    RawGraph { n, edges }
}

/// A bidirectional ring on `n` vertices (mirrors
/// `gqs_workloads::generators::ring`, duplicated here to keep core's test
/// build free of the core → workloads dev-dependency cycle).
pub fn ring_raw(n: usize) -> RawGraph {
    let mut edges = Vec::new();
    for i in 0..n {
        let j = (i + 1) % n;
        if i != j {
            edges.push((i, j));
            edges.push((j, i));
        }
    }
    RawGraph { n, edges }
}

/// A ragged 4-neighbour mesh on `n` vertices, `cols` columns, every mesh
/// edge bidirectional (mirrors `gqs_workloads::generators::grid_graph_n`).
pub fn grid_raw(n: usize, cols: usize) -> RawGraph {
    let mut edges = Vec::new();
    for v in 0..n {
        if (v + 1) % cols != 0 && v + 1 < n {
            edges.push((v, v + 1));
            edges.push((v + 1, v));
        }
        if v + cols < n {
            edges.push((v, v + cols));
            edges.push((v + cols, v));
        }
    }
    RawGraph { n, edges }
}

/// Two complete cliques joined by a single bidirectional bridge (mirrors
/// `gqs_workloads::generators::two_cliques_bridge`).
pub fn bridge_raw(n: usize) -> RawGraph {
    let half = n.div_ceil(2);
    let mut edges = Vec::new();
    for (lo, hi) in [(0, half), (half, n)] {
        for a in lo..hi {
            for b in lo..hi {
                if a != b {
                    edges.push((a, b));
                }
            }
        }
    }
    edges.push((0, half));
    edges.push((half, 0));
    RawGraph { n, edges }
}

pub fn build(raw: &RawGraph) -> NetworkGraph {
    NetworkGraph::with_channels(
        raw.n,
        raw.edges.iter().map(|&(a, b)| Channel::new(ProcessId(a), ProcessId(b))),
    )
}

/// A random well-formed failure pattern over `raw`: random crashes, then
/// each surviving edge fails with probability `p_chan`.
pub fn random_pattern(
    raw: &RawGraph,
    p_crash: f64,
    p_chan: f64,
    rng: &mut SplitMix64,
) -> FailurePattern {
    let faulty: ProcessSet = (0..raw.n).filter(|_| rng.chance(p_crash)).collect();
    let channels: Vec<Channel> = raw
        .edges
        .iter()
        .filter(|&&(a, b)| {
            !faulty.contains(ProcessId(a)) && !faulty.contains(ProcessId(b)) && rng.chance(p_chan)
        })
        .map(|&(a, b)| Channel::new(ProcessId(a), ProcessId(b)))
        .collect();
    FailurePattern::new(raw.n, faulty, channels).expect("well-formed by construction")
}

/// A random fail-prone system of up to `max_patterns` patterns.
pub fn random_fail_prone(
    raw: &RawGraph,
    max_patterns: usize,
    p_crash: f64,
    p_chan: f64,
    rng: &mut SplitMix64,
) -> FailProneSystem {
    let m = rng.range(1, max_patterns as u64) as usize;
    let patterns: Vec<FailurePattern> =
        (0..m).map(|_| random_pattern(raw, p_crash, p_chan, rng)).collect();
    FailProneSystem::new(raw.n, patterns).expect("uniform universe")
}
