//! Differential tests: the transpose-cached reachability engine and the
//! memoized CSP finder against the naive reference implementations kept in
//! [`gqs_core::reference`].
//!
//! Random digraphs and failure patterns come from a seeded SplitMix64 (see
//! `common`), so every run replays the same cases. These tests are the
//! safety net for the perf work: any divergence between the optimized and
//! the reference pipeline fails here before it can skew an experiment.

mod common;

use common::{
    bridge_raw, build, grid_raw, random_fail_prone, random_pattern, random_raw, ring_raw, RawGraph,
    SplitMix64,
};
use gqs_core::finder::{find_gqs, gqs_exists, gqs_exists_brute_force};
use gqs_core::reference::{gqs_exists_naive, NaiveResidual};
use gqs_core::{ProcessId, ProcessSet};

/// `reach_from` agrees with the naive engine on random residual graphs,
/// in any query order (cache-independence).
#[test]
fn reach_from_matches_reference() {
    for case in 0..160 {
        let mut rng = SplitMix64::new(5_000 + case);
        let raw = random_raw(16, &mut rng);
        let g = build(&raw);
        let f = random_pattern(&raw, 0.2, 0.3, &mut rng);
        let fast = g.residual(&f);
        let slow = NaiveResidual::build(&g, &f);
        // Query in a scrambled order so cache-fill order varies by case.
        let mut order: Vec<usize> = (0..raw.n).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.range(0, i as u64) as usize);
        }
        for &p in &order {
            assert_eq!(
                fast.reach_from(ProcessId(p)),
                slow.reach_from(ProcessId(p)),
                "reach_from({p}) diverged (case {case})"
            );
        }
        // Second pass hits the cache; answers must not change.
        for &p in &order {
            assert_eq!(fast.reach_from(ProcessId(p)), slow.reach_from(ProcessId(p)));
        }
    }
}

/// The transpose-BFS `reach_to` agrees with the quadratic fixpoint.
#[test]
fn reach_to_matches_reference() {
    for case in 0..160 {
        let mut rng = SplitMix64::new(6_000 + case);
        let raw = random_raw(16, &mut rng);
        let g = build(&raw);
        let f = random_pattern(&raw, 0.2, 0.3, &mut rng);
        let fast = g.residual(&f);
        let slow = NaiveResidual::build(&g, &f);
        for p in 0..raw.n {
            assert_eq!(
                fast.reach_to(ProcessId(p)),
                slow.reach_to(ProcessId(p)),
                "reach_to({p}) diverged (case {case})"
            );
        }
    }
}

/// `reach_to_all` agrees with the reference on random target sets.
#[test]
fn reach_to_all_matches_reference() {
    for case in 0..160 {
        let mut rng = SplitMix64::new(7_000 + case);
        let raw = random_raw(12, &mut rng);
        let g = build(&raw);
        let f = random_pattern(&raw, 0.2, 0.3, &mut rng);
        let fast = g.residual(&f);
        let slow = NaiveResidual::build(&g, &f);
        for _ in 0..8 {
            let set: ProcessSet = (0..raw.n).filter(|_| rng.chance(0.35)).collect();
            assert_eq!(
                fast.reach_to_all(set),
                slow.reach_to_all(set),
                "reach_to_all({set}) diverged (case {case})"
            );
        }
        // The alive set itself and the empty set are the edge cases.
        assert_eq!(fast.reach_to_all(fast.alive()), slow.reach_to_all(slow.alive()));
        assert_eq!(fast.reach_to_all(ProcessSet::new()), ProcessSet::new());
    }
}

/// SCC decomposition agrees with the reference (same components, same
/// smallest-member order).
#[test]
fn sccs_match_reference() {
    for case in 0..160 {
        let mut rng = SplitMix64::new(8_000 + case);
        let raw = random_raw(16, &mut rng);
        let g = build(&raw);
        let f = random_pattern(&raw, 0.2, 0.3, &mut rng);
        let fast = g.residual(&f);
        let slow = NaiveResidual::build(&g, &f);
        assert_eq!(fast.sccs(), slow.sccs(), "sccs diverged (case {case})");
        // And interleaving reachability queries must not disturb them.
        for p in 0..raw.n {
            let _ = fast.reach_from(ProcessId(p));
        }
        assert_eq!(fast.sccs(), slow.sccs(), "sccs diverged after cache warm-up (case {case})");
    }
}

/// The memoized CSP finder, the naive pipeline, and the exhaustive oracle
/// agree on GQS existence for small random fail-prone systems.
#[test]
fn finder_matches_naive_and_brute_force() {
    for case in 0..200 {
        let mut rng = SplitMix64::new(9_000 + case);
        let raw = random_raw(6, &mut rng);
        let g = build(&raw);
        let fp = random_fail_prone(&raw, 4, 0.25, 0.3, &mut rng);
        let fast = gqs_exists(&g, &fp);
        assert_eq!(fast, gqs_exists_naive(&g, &fp), "optimized vs naive finder (case {case})");
        assert_eq!(
            fast,
            gqs_exists_brute_force(&g, &fp),
            "optimized finder vs exhaustive oracle (case {case})"
        );
        // find_gqs must agree with gqs_exists and return a valid witness.
        match find_gqs(&g, &fp) {
            Some(w) => {
                assert!(fast, "witness produced for an unsolvable system (case {case})");
                assert_eq!(w.per_pattern.len(), fp.len());
            }
            None => {
                assert!(!fast || fp.is_empty(), "no witness for a solvable system (case {case})")
            }
        }
    }
}

/// The multi-word engine agrees with the reference beyond the old
/// 128-process cap: reachability, SCCs and `reach_to_all` on random
/// digraphs with 129–260 processes (word counts 3 and 5, so every
/// word-boundary crossing in the word-bounded kernels is exercised).
#[test]
fn reachability_matches_reference_past_128_processes() {
    for (case, &n) in [129, 160, 192, 260].iter().enumerate() {
        let mut rng = SplitMix64::new(12_000 + case as u64);
        // Sparse enough that reachability is nontrivial, dense enough that
        // the naive quadratic fixpoint converges in a few rounds.
        let mut raw = RawGraph { n, edges: Vec::new() };
        for a in 0..n {
            for b in 0..n {
                if a != b && rng.chance(0.03) {
                    raw.edges.push((a, b));
                }
            }
        }
        let g = build(&raw);
        let f = random_pattern(&raw, 0.1, 0.2, &mut rng);
        let fast = g.residual(&f);
        let slow = NaiveResidual::build(&g, &f);
        for p in 0..n {
            assert_eq!(
                fast.reach_from(ProcessId(p)),
                slow.reach_from(ProcessId(p)),
                "reach_from({p}) diverged at n={n}"
            );
            assert_eq!(
                fast.reach_to(ProcessId(p)),
                slow.reach_to(ProcessId(p)),
                "reach_to({p}) diverged at n={n}"
            );
        }
        assert_eq!(fast.sccs(), slow.sccs(), "sccs diverged at n={n}");
        for _ in 0..4 {
            let set: ProcessSet = (0..n).filter(|_| rng.chance(0.3)).collect();
            assert_eq!(
                fast.reach_to_all(set),
                slow.reach_to_all(set),
                "reach_to_all diverged at n={n}"
            );
        }
    }
}

/// GQS existence past the old cap: the memoized finder, the naive
/// pipeline, and (where the choice space is small enough) the exhaustive
/// oracle agree on systems with more than 128 processes.
///
/// The graphs have a ring backbone plus random chords, which keeps the
/// residuals to a handful of SCCs so the oracle's full cross product stays
/// tractable.
#[test]
fn finder_matches_naive_and_brute_force_past_128_processes() {
    for case in 0..8u64 {
        let mut rng = SplitMix64::new(13_000 + case);
        let n = 129 + rng.range(0, 60) as usize;
        let mut raw = RawGraph { n, edges: Vec::new() };
        for i in 0..n {
            raw.edges.push((i, (i + 1) % n));
        }
        for a in 0..n {
            for b in 0..n {
                if a != b && b != (a + 1) % n && rng.chance(0.02) {
                    raw.edges.push((a, b));
                }
            }
        }
        let g = build(&raw);
        let fp = random_fail_prone(&raw, 3, 0.03, 0.05, &mut rng);
        let fast = gqs_exists(&g, &fp);
        assert_eq!(fast, gqs_exists_naive(&g, &fp), "optimized vs naive finder (n={n})");
        let combos: usize = fp.patterns().map(|f| g.residual(f).sccs().len().max(1)).product();
        if combos <= 50_000 {
            assert_eq!(
                fast,
                gqs_exists_brute_force(&g, &fp),
                "optimized finder vs exhaustive oracle (n={n})"
            );
        }
        match find_gqs(&g, &fp) {
            Some(w) => {
                assert!(fast, "witness produced for an unsolvable system (n={n})");
                assert_eq!(w.per_pattern.len(), fp.len());
            }
            None => assert!(!fast, "no witness for a solvable system (n={n})"),
        }
    }
}

/// Structured topologies — rings, meshes, two cliques joined by a single
/// bridge — produce residual shapes (long detour paths, one-directional
/// cuts, hub bottlenecks) that random digraphs almost never hit. The
/// engine, the naive pipeline and the exhaustive oracle must agree on
/// all of them, at both the reachability and the finder layer.
#[test]
fn finder_matches_reference_on_structured_topologies() {
    for case in 0..60u64 {
        let mut rng = SplitMix64::new(14_000 + case);
        let n = 4 + (case as usize % 5); // 4..=8
        for raw in [ring_raw(n), grid_raw(n, 3), bridge_raw(n)] {
            let g = build(&raw);
            // Reachability layer first.
            let f = random_pattern(&raw, 0.15, 0.3, &mut rng);
            let fast = g.residual(&f);
            let slow = NaiveResidual::build(&g, &f);
            for p in 0..n {
                assert_eq!(fast.reach_from(ProcessId(p)), slow.reach_from(ProcessId(p)));
                assert_eq!(fast.reach_to(ProcessId(p)), slow.reach_to(ProcessId(p)));
            }
            assert_eq!(fast.sccs(), slow.sccs());
            // Finder layer: engine vs naive vs exhaustive oracle.
            let fp = random_fail_prone(&raw, 3, 0.2, 0.3, &mut rng);
            let verdict = gqs_exists(&g, &fp);
            assert_eq!(verdict, gqs_exists_naive(&g, &fp), "naive diverged (case {case}, n={n})");
            assert_eq!(
                verdict,
                gqs_exists_brute_force(&g, &fp),
                "oracle diverged (case {case}, n={n})"
            );
            match find_gqs(&g, &fp) {
                Some(w) => {
                    assert!(verdict, "witness for unsolvable system (case {case})");
                    assert_eq!(w.per_pattern.len(), fp.len());
                }
                None => assert!(!verdict, "no witness for solvable system (case {case})"),
            }
        }
    }
}

/// Duplicate patterns (which the solver collapses into one CSP variable)
/// never change the verdict.
#[test]
fn duplicated_patterns_do_not_change_the_verdict() {
    for case in 0..120 {
        let mut rng = SplitMix64::new(11_000 + case);
        let raw = random_raw(6, &mut rng);
        let g = build(&raw);
        let fp = random_fail_prone(&raw, 3, 0.25, 0.3, &mut rng);
        let baseline = gqs_exists(&g, &fp);
        // Repeat every pattern 2-3 times in shuffled positions.
        let mut patterns: Vec<_> = fp.patterns().cloned().collect();
        let extra: Vec<_> = fp.patterns().filter(|_| rng.chance(0.7)).cloned().collect();
        patterns.extend(extra);
        patterns.extend(fp.patterns().cloned());
        let dup = gqs_core::FailProneSystem::new(raw.n, patterns).unwrap();
        assert_eq!(
            gqs_exists(&g, &dup),
            baseline,
            "duplicating patterns changed the verdict (case {case})"
        );
        assert_eq!(gqs_exists(&g, &dup), gqs_exists_brute_force(&g, &dup));
    }
}
