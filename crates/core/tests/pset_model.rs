//! Word-boundary property tests for the multi-word [`ProcessSet`]:
//! differential checks of the whole set algebra against a `BTreeSet<usize>`
//! model, concentrated on universes that straddle the backing-word
//! boundaries (63/64/65, 127/128/129) plus a mid-range multi-word size.
//!
//! Randomness comes from the same seeded SplitMix64 harness as the other
//! integration tests, so every run replays the same cases.

mod common;

use std::collections::BTreeSet;

use common::SplitMix64;
use gqs_core::{ProcessId, ProcessSet};

/// The universes under test: both sides of each 64-bit word boundary the
/// old `u128` backing did and did not cover, plus a deep multi-word size.
const SIZES: &[usize] = &[63, 64, 65, 127, 128, 129, 512];

/// A random subset of `0..n` with inclusion probability `p`, built in both
/// representations simultaneously.
fn random_pair(n: usize, p: f64, rng: &mut SplitMix64) -> (ProcessSet, BTreeSet<usize>) {
    let mut set = ProcessSet::new();
    let mut model = BTreeSet::new();
    for i in 0..n {
        if rng.chance(p) {
            set.insert(ProcessId(i));
            model.insert(i);
        }
    }
    (set, model)
}

fn assert_matches(set: ProcessSet, model: &BTreeSet<usize>, what: &str) {
    assert_eq!(set.len(), model.len(), "{what}: len diverged");
    assert_eq!(set.is_empty(), model.is_empty(), "{what}: is_empty diverged");
    assert_eq!(
        set.iter().map(|p| p.index()).collect::<Vec<_>>(),
        model.iter().copied().collect::<Vec<_>>(),
        "{what}: iteration diverged"
    );
    assert_eq!(set.first().map(|p| p.index()), model.first().copied(), "{what}: first diverged");
}

#[test]
fn algebra_matches_btreeset_model_at_word_boundaries() {
    for &n in SIZES {
        for case in 0..40u64 {
            let mut rng = SplitMix64::new(n as u64 * 1_000 + case);
            // Sweep densities so empty, sparse and near-full sets all occur.
            let p = [0.0, 0.05, 0.5, 0.95, 1.0][case as usize % 5];
            let (a, ma) = random_pair(n, p, &mut rng);
            let (b, mb) = random_pair(n, 0.5, &mut rng);
            assert_matches(a, &ma, "a itself");
            assert_matches(a | b, &(&ma | &mb), "union");
            assert_matches(a & b, &(&ma & &mb), "intersection");
            assert_matches(a - b, &(&ma - &mb), "difference");
            let co_model: BTreeSet<usize> = (0..n).filter(|i| !ma.contains(i)).collect();
            assert_matches(a.complement(n), &co_model, "complement");
            assert_eq!(a.is_subset(b), ma.is_subset(&mb), "is_subset diverged (n={n})");
            assert_eq!(a.is_disjoint(b), ma.is_disjoint(&mb), "is_disjoint diverged (n={n})");
            assert_eq!(a.intersects(b), !ma.is_disjoint(&mb), "intersects diverged (n={n})");
            // Membership across the whole universe, including both sides of
            // every word boundary inside it.
            for i in 0..n {
                assert_eq!(a.contains(ProcessId(i)), ma.contains(&i), "contains({i}) at n={n}");
            }
        }
    }
}

#[test]
fn mutation_matches_btreeset_model_at_word_boundaries() {
    for &n in SIZES {
        let mut rng = SplitMix64::new(0xABCD ^ n as u64);
        let mut set = ProcessSet::new();
        let mut model: BTreeSet<usize> = BTreeSet::new();
        // A long random walk of inserts/removes, biased to hover around the
        // word boundaries inside the universe.
        for step in 0..2_000 {
            let i = if rng.chance(0.5) {
                // Near a multiple of 64 (clamped into the universe).
                let anchor = 64 * rng.range(0, (n as u64).div_ceil(64)) as usize;
                let jitter = rng.range(0, 4) as usize;
                anchor.saturating_sub(2).saturating_add(jitter).min(n - 1)
            } else {
                rng.range(0, n as u64 - 1) as usize
            };
            if rng.chance(0.5) {
                assert_eq!(
                    set.insert(ProcessId(i)),
                    model.insert(i),
                    "insert({i}) fresh-flag diverged at n={n} step={step}"
                );
            } else {
                assert_eq!(
                    set.remove(ProcessId(i)),
                    model.remove(&i),
                    "remove({i}) present-flag diverged at n={n} step={step}"
                );
            }
        }
        assert_matches(set, &model, "after the walk");
        // with/without agree with the model on a sample, without mutating.
        let snapshot = set;
        for _ in 0..50 {
            let i = rng.range(0, n as u64 - 1) as usize;
            let mut m = model.clone();
            m.insert(i);
            assert_matches(snapshot.with(ProcessId(i)), &m, "with");
            let mut m = model.clone();
            m.remove(&i);
            assert_matches(snapshot.without(ProcessId(i)), &m, "without");
        }
        assert_eq!(snapshot, set, "with/without mutated the receiver");
    }
}

#[test]
fn collect_and_full_match_model_at_word_boundaries() {
    for &n in SIZES {
        let mut rng = SplitMix64::new(0x5EED ^ n as u64);
        let full = ProcessSet::full(n);
        let full_model: BTreeSet<usize> = (0..n).collect();
        assert_matches(full, &full_model, "full");
        assert!(!full.contains(ProcessId(n)), "full({n}) leaked past the universe");
        let picks: Vec<usize> = (0..n).filter(|_| rng.chance(0.3)).collect();
        let collected: ProcessSet = picks.iter().copied().collect();
        let model: BTreeSet<usize> = picks.into_iter().collect();
        assert_matches(collected, &model, "FromIterator");
        assert!(collected.is_subset(full));
        assert_eq!(collected.complement(n).complement(n), collected, "double complement");
    }
}
