//! Conflict-free aggregation at weakly connected sensors via lattice
//! agreement.
//!
//! Four monitoring stations observe overlapping sets of events and must
//! publish **comparable** summaries (so any two consumers can tell which
//! summary is fresher) even while the network is degraded as in the
//! paper's Figure 1: one station down, several one-way links.
//!
//! Lattice agreement is exactly this primitive: everyone proposes its
//! observation set, everyone learns a join that contains its own input,
//! and all learned sets form a chain.
//!
//! ```sh
//! cargo run --example lattice_sensors
//! ```

use gqs::checker::{check_lattice_agreement, LatticeOutcome};
use gqs::core::systems::figure1;
use gqs::core::ProcessId;
use gqs::lattice::{gqs_lattice_nodes, JoinSemilattice, Learned, Propose, SetLattice};
use gqs::simnet::{FailureSchedule, SimConfig, SimTime, Simulation, StopReason};

type Events = SetLattice<&'static str>;

fn main() {
    let fig = figure1();
    println!("four stations under Figure 1's failure pattern f1:");
    println!("  station d is down; channels (a,c), (b,c), (c,b) are dropping");
    println!("  termination guaranteed at U_f1 = {}", fig.gqs.u_f(0));
    println!();

    let nodes = gqs_lattice_nodes::<Events>(&fig.gqs, 20);
    let cfg = SimConfig { seed: 99, horizon: SimTime(900_000), ..SimConfig::default() };
    let mut sim = Simulation::new(cfg, nodes);
    sim.apply_failures(&FailureSchedule::from_pattern_at(fig.fail_prone.pattern(0), SimTime(0)));

    // Stations a and b (the guaranteed set) propose overlapping readings
    // concurrently.
    sim.invoke_at(
        SimTime(10),
        ProcessId(0),
        Propose(SetLattice::from_iter(["temp-spike", "door-open"])),
    );
    sim.invoke_at(
        SimTime(12),
        ProcessId(1),
        Propose(SetLattice::from_iter(["door-open", "fan-failure"])),
    );

    let reason = sim.run_until_ops_complete();
    assert_eq!(reason, StopReason::OpsComplete);

    println!("learned summaries:");
    let mut outcomes = Vec::new();
    for rec in sim.history().ops() {
        let Learned(y) = rec.resp().expect("completed");
        let mut events: Vec<&str> = y.0.iter().copied().collect();
        events.sort_unstable();
        println!(
            "  station {}: proposed {:?} -> learned {:?} (latency {})",
            rec.process,
            rec.op.0 .0,
            events,
            rec.latency().unwrap()
        );
        outcomes.push(LatticeOutcome {
            process: rec.process,
            input: rec.op.0.clone(),
            output: Some(y.clone()),
        });
    }

    check_lattice_agreement(
        &outcomes,
        |a: &Events, b: &Events| a.leq(b),
        |a: &Events, b: &Events| a.join(b),
    )
    .expect("comparability / validity");
    println!();
    println!("all summaries are pairwise comparable and contain their own inputs ✓");
    let rounds: Vec<u64> = (0..2).map(|p| sim.node(ProcessId(p)).inner().rounds()).collect();
    println!("update/scan rounds per station: {rounds:?} (bounded by n = 4)");
}
