//! A generalized quorum system for a 160-replica, four-region deployment —
//! end to end, past the old 128-process cap.
//!
//! The multi-word `ProcessSet` (PR 2) lifted `MAX_PROCESSES` from 128 to
//! 1024; this example exercises the whole stack at n = 160: topology
//! construction, fail-prone modelling with both region outages and
//! inter-region link failures, the exact GQS decision procedure, and the
//! per-pattern wait-freedom sets `U_f`.
//!
//! ```sh
//! cargo run --release --example beyond_128             # 4 regions x 40
//! cargo run --release --example beyond_128 -- 8 50     # 8 regions x 50
//! ```

use std::time::Instant;

use gqs::core::finder::{explain_unsolvable, find_gqs};
use gqs::core::{Channel, FailProneSystem, FailurePattern, NetworkGraph, ProcessId, ProcessSet};
use gqs::workloads::Table;

/// Builds the deployment graph: a complete digraph inside each region, and
/// bidirectional gateway links between adjacent regions (ring of regions,
/// three gateway pairs per border so a single link is never a cut).
fn deployment(regions: usize, per_region: usize) -> NetworkGraph {
    let n = regions * per_region;
    let mut g = NetworkGraph::empty(n);
    for r in 0..regions {
        let base = r * per_region;
        for a in 0..per_region {
            for b in 0..per_region {
                if a != b {
                    g.add_channel(Channel::new(ProcessId(base + a), ProcessId(base + b)));
                }
            }
        }
    }
    for r in 0..regions {
        let next = (r + 1) % regions;
        for k in 0..3 {
            let from = r * per_region + k;
            let to = next * per_region + k;
            g.add_channel(Channel::new(ProcessId(from), ProcessId(to)));
            g.add_channel(Channel::new(ProcessId(to), ProcessId(from)));
        }
    }
    g
}

/// The set of all processes in region `r`.
fn region(r: usize, per_region: usize) -> ProcessSet {
    (r * per_region..(r + 1) * per_region).collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let regions: usize = args.first().and_then(|a| a.parse().ok()).unwrap_or(4);
    let per_region: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(40);
    let n = regions * per_region;

    let g = deployment(regions, per_region);
    println!(
        "deployment: {regions} regions x {per_region} replicas = {n} processes, {} channels",
        g.channels().count()
    );

    // Fail-prone system: any single region may go dark entirely, and any
    // single inter-region border may lose all its gateway links.
    let mut patterns = Vec::new();
    for r in 0..regions {
        patterns.push(
            FailurePattern::crash_only(n, region(r, per_region)).expect("region within universe"),
        );
    }
    for r in 0..regions {
        let next = (r + 1) % regions;
        let cut: Vec<Channel> = (0..3)
            .flat_map(|k| {
                let a = ProcessId(r * per_region + k);
                let b = ProcessId(next * per_region + k);
                [Channel::new(a, b), Channel::new(b, a)]
            })
            .collect();
        patterns.push(FailurePattern::new(n, ProcessSet::new(), cut).expect("well-formed"));
    }
    let fp = FailProneSystem::new(n, patterns).expect("uniform universe");
    println!("fail-prone system: {} patterns (region outages + border cuts)", fp.len());

    let t0 = Instant::now();
    let witness = find_gqs(&g, &fp);
    let elapsed = t0.elapsed();

    match witness {
        Some(w) => {
            println!("a generalized quorum system EXISTS (decided in {elapsed:?})\n");
            let mut t = Table::new(["pattern", "kind", "|R_f|", "|W_f|", "|U_f|"]);
            for (i, (r, wq)) in w.per_pattern.iter().enumerate() {
                let kind = if i < regions {
                    format!("region {i} dark")
                } else {
                    format!("border {}-{} cut", i - regions, (i - regions + 1) % regions)
                };
                t.row([
                    &format!("f{i}"),
                    &kind,
                    &r.len().to_string(),
                    &wq.len().to_string(),
                    &w.system.u_f(i).len().to_string(),
                ]);
            }
            println!("{t}");
            // Show that high-numbered processes really participate: the
            // first read quorum's largest member.
            let (r0, _) = w.per_pattern[0];
            let top = r0.iter().last().expect("read quorums are nonempty");
            println!(
                "largest member of R_f0: {top} (index {}, word {} of the bitset)",
                top.index(),
                top.index() / 64
            );
        }
        None => {
            let why = explain_unsolvable(&g, &fp);
            println!("no GQS exists (decided in {elapsed:?}):");
            match why {
                Some(reason) => println!("  {reason}"),
                None => println!("  (solver and explainer disagree — this is a bug)"),
            }
        }
    }
}
