//! Flooded gossip across 100 000 (or a million) simulated processes.
//!
//! The scale core (PR 7) keeps per-process state flat — a parity-encoded
//! liveness epoch per process, O(1) protocol state, and an *implicit*
//! topology whose adjacency is arithmetic instead of a materialized edge
//! set — and schedules events on a 64-ary timing wheel with no per-event
//! allocation. That makes runs far past `gqs_core::MAX_PROCESSES` (the
//! 1024-process decision-procedure bound) cheap: a million-process ring
//! floods in a fraction of a second within ~100 bytes of peak RSS per
//! process.
//!
//! ```sh
//! cargo run --release --example gossip_100k              # ring of 100k
//! cargo run --release --example gossip_100k -- 1000000   # ring of 1M
//! cargo run --release --example gossip_100k -- 250000 grid
//! ```

use std::time::Instant;

use gqs::core::ProcessId;
use gqs::simnet::{Gossip, SimConfig, SimTime, Simulation, Topology, MAX_SIM_PROCESSES};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = args.first().and_then(|a| a.parse().ok()).unwrap_or(100_000);
    assert!((2..=MAX_SIM_PROCESSES).contains(&n), "n must be in 2..={MAX_SIM_PROCESSES}");
    let topology = match args.get(1).map(String::as_str) {
        None | Some("ring") => Topology::Ring { n },
        Some("grid") => {
            let cols = (n as f64).sqrt().ceil() as usize;
            Topology::Grid { n, cols: cols.max(1) }
        }
        Some(other) => panic!("unknown topology {other:?} (expected ring or grid)"),
    };
    println!("flooding a {topology:?} from process 0 ...");

    let cfg =
        SimConfig { topology, horizon: SimTime::MAX, max_events: u64::MAX, ..SimConfig::default() };
    let t0 = Instant::now();
    let mut sim = Simulation::new(cfg, vec![Gossip::default(); n]);
    sim.invoke_at(SimTime(1), ProcessId(0), ());
    sim.run();
    let wall = t0.elapsed();

    let reached = (0..n).filter(|&p| sim.node(ProcessId(p)).heard_at().is_some()).count();
    let last = (0..n).filter_map(|p| sim.node(ProcessId(p)).heard_at()).max().expect("n >= 2");
    let stats = sim.stats();
    println!(
        "reached {reached}/{n} processes by simulated time {} (last heard at {})",
        sim.now().0,
        last.0
    );
    println!(
        "{} events, {} sends in {:.3}s wall — {:.0} events/sec",
        stats.events,
        stats.sent,
        wall.as_secs_f64(),
        stats.events as f64 / wall.as_secs_f64().max(1e-9)
    );
    assert_eq!(reached, n, "the flood must reach every process");
}
