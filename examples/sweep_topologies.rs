//! How solvability — and protocol latency — vary across network shapes:
//! a streamed scenario grid over every topology family, under rotating
//! crashes and under targeted adversarial cuts, followed by a
//! protocol-latency sweep that *simulates* a flooded ABD register on
//! each shape.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example sweep_topologies
//! ```
//!
//! This is the library-level twin of the `gqs_sweep` CLI: it builds a
//! [`ScenarioGrid`] by hand, streams it through the engine (constant
//! memory, deterministic for any `GQS_THREADS`), and prints a comparison
//! table. Try flipping `PATTERNS` to `PatternFamily::Rotating` or raising
//! `TRIALS` — aggregates for the same seed never change across thread
//! counts, so numbers are comparable machine to machine.

use gqs::workloads::sweep::{
    NetworkFamily, PatternFamily, ScenarioCell, ScenarioGrid, ScheduleFamily, SweepOptions,
    TopologyFamily,
};
use gqs::workloads::Table;

const TRIALS: usize = 400;

fn main() {
    let families = [
        TopologyFamily::Complete,
        TopologyFamily::TwoCliquesBridge,
        TopologyFamily::Grid,
        TopologyFamily::Ring,
        TopologyFamily::OrientedRing,
        TopologyFamily::Star,
    ];
    for (title, patterns) in [
        ("rotating crashes (Figure-1 style), p_chan = 0.1", PatternFamily::Rotating),
        ("targeted adversarial cuts, 6 patterns", PatternFamily::Adversarial { patterns: 6 }),
    ] {
        let grid = ScenarioGrid {
            cells: families
                .iter()
                .map(|&family| ScenarioCell {
                    family,
                    n: 6,
                    density: 1.0,
                    patterns,
                    p_chan: 0.1,
                    loss: 0.0,
                    schedule: ScheduleFamily::Static,
                    net: NetworkFamily::Uniform,
                })
                .collect(),
            trials: TRIALS,
            seed: 2025,
        };
        let report = grid.run(&SweepOptions::default());
        let mut t = Table::new(["topology (n=6)", "GQS %", "QS+ %", "gap %", "median |W|min"]);
        for (i, cell) in grid.cells.iter().enumerate() {
            t.row([
                cell.family.name().to_string(),
                format!("{:.1}%", 100.0 * report.agg(i, "gqs").mean()),
                format!("{:.1}%", 100.0 * report.agg(i, "qs_plus").mean()),
                format!("{:.1}%", 100.0 * report.agg(i, "gap").mean()),
                format!("{:.0}", report.agg(i, "w_min").quantile(0.5)),
            ]);
        }
        println!("== {title}, {TRIALS} trials/cell ==\n{t}");
    }
    // The latency face of the same grid: each trial simulates a flooded
    // ABD majority register over the family's channels with the first
    // rotating pattern's crash striking at time zero.
    let grid = ScenarioGrid {
        cells: families
            .iter()
            .map(|&family| ScenarioCell {
                family,
                n: 6,
                density: 1.0,
                patterns: PatternFamily::Rotating,
                p_chan: 0.0,
                loss: 0.0,
                schedule: ScheduleFamily::Static,
                net: NetworkFamily::Uniform,
            })
            .collect(),
        trials: 32,
        seed: 2025,
    };
    let report = grid.run_latency(&SweepOptions::default());
    let mut t = Table::new(["topology (n=6)", "completed %", "mean latency", "p90 lat", "msgs/op"]);
    for (i, cell) in grid.cells.iter().enumerate() {
        t.row([
            cell.family.name().to_string(),
            format!("{:.0}%", 100.0 * report.agg(i, "completed").mean()),
            format!("{:.0}", report.agg(i, "lat_mean").mean()),
            format!("{:.0}", report.agg(i, "lat_mean").quantile(0.9)),
            format!("{:.0}", report.agg(i, "msgs_per_op").mean()),
        ]);
    }
    println!("== simulated ABD-over-Flood latency, rotating crash f0, 32 trials/cell ==\n{t}");
    println!("note: star scores 0 under rotating crashes — the pattern that");
    println!("crashes the hub leaves no strongly connected write quorum that");
    println!("others can reach, so no GQS exists. Redundant shapes (meshes,");
    println!("bridged cliques) keep most of the complete graph's solvability");
    println!("at a fraction of its channels. Adversarial cuts are far more");
    println!("damaging per failed channel than i.i.d. noise: the same shapes");
    println!("drop to a fraction of their rotating-crash solvability, and the");
    println!("survivors often admit a GQS but no QS+ (the gap column) because");
    println!("a directed cut severs reachability in exactly one direction.");
}
