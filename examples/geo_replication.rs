//! Geo-replication with asymmetric connectivity.
//!
//! A register replicated across two datacenters plus an edge sensor site:
//!
//! * `a, b` — datacenter EAST; `c, d` — datacenter WEST; `e` — an edge
//!   site behind a satellite uplink that can *transmit* reliably but whose
//!   *receive* path may drop.
//! * Pattern `east-to-west loss`: the EAST→WEST direction of the
//!   inter-DC link degrades (plus `d` may crash). WEST can still push its
//!   state to EAST — a one-way situation classical quorum systems cannot
//!   exploit but a GQS can.
//! * Pattern `west-to-east loss`: the mirror image (plus `b` may crash).
//! * Pattern `edge cut off downstream`: every channel into `e` drops; the
//!   sensor can still upload readings but hears nothing back.
//!
//! The example lets the decision procedure *derive* the quorum systems,
//! prints where termination is guaranteed (`U_f`), and demonstrates both
//! the guaranteed operations and the predicted hang at the edge site.
//!
//! ```sh
//! cargo run --example geo_replication
//! ```

use gqs::core::finder::{find_gqs, qs_plus_exists};
use gqs::core::{chan, pset, FailProneSystem, FailurePattern, NetworkGraph, ProcessId};
use gqs::registers::{gqs_register_nodes, RegOp, RegResp};
use gqs::simnet::{FailureSchedule, SimConfig, SimTime, Simulation};

const EAST_A: usize = 0;
const EAST_B: usize = 1;
const WEST_C: usize = 2;
const WEST_D: usize = 3;
const EDGE_E: usize = 4;

fn scenario() -> (NetworkGraph, FailProneSystem) {
    let graph = NetworkGraph::complete(5);
    // EAST -> WEST direction lost; d may crash.
    let east_to_west_loss = FailurePattern::new(
        5,
        pset![WEST_D],
        [
            chan!(EAST_A, WEST_C),
            chan!(EAST_B, WEST_C),
            chan!(EAST_A, EDGE_E),
            chan!(EAST_B, EDGE_E),
        ],
    )
    .expect("well-formed");
    // WEST -> EAST direction lost; b may crash.
    let west_to_east_loss = FailurePattern::new(
        5,
        pset![EAST_B],
        [
            chan!(WEST_C, EAST_A),
            chan!(WEST_D, EAST_A),
            chan!(WEST_C, EDGE_E),
            chan!(WEST_D, EDGE_E),
        ],
    )
    .expect("well-formed");
    // Edge site can upload but not receive.
    let edge_cut = FailurePattern::new(
        5,
        pset![],
        [
            chan!(EAST_A, EDGE_E),
            chan!(EAST_B, EDGE_E),
            chan!(WEST_C, EDGE_E),
            chan!(WEST_D, EDGE_E),
        ],
    )
    .expect("well-formed");
    let fp = FailProneSystem::new(5, [east_to_west_loss, west_to_east_loss, edge_cut])
        .expect("uniform universe");
    (graph, fp)
}

fn name(p: ProcessId) -> &'static str {
    ["east-a", "east-b", "west-c", "west-d", "edge-e"][p.index()]
}

fn main() {
    let (graph, fp) = scenario();
    println!("deployment: EAST {{a,b}}, WEST {{c,d}}, EDGE {{e}} over a full mesh");
    for (i, f) in fp.patterns().enumerate() {
        println!("  pattern {}: {}", i + 1, f);
    }
    println!();

    // ---- Solvability --------------------------------------------------
    let witness = find_gqs(&graph, &fp).expect("the scenario is solvable");
    println!("a generalized quorum system exists: {}", witness.system);
    println!("a strongly connected QS+ exists: {}", qs_plus_exists(&graph, &fp));
    for i in 0..fp.len() {
        let u = witness.system.u_f(i);
        let names: Vec<&str> = u.iter().map(name).collect();
        println!("  pattern {}: termination guaranteed at {}", i + 1, names.join(", "));
    }
    println!();

    // ---- Run the register under the edge-cut pattern ------------------
    let nodes = gqs_register_nodes::<u8, u64>(&witness.system, 0, 20);
    let cfg = SimConfig { seed: 7, horizon: SimTime(80_000), ..SimConfig::default() };
    let mut sim = Simulation::new(cfg, nodes);
    sim.apply_failures(&FailureSchedule::from_pattern_at(fp.pattern(2), SimTime(0)));

    // The datacenters replicate a configuration value; the edge sensor
    // tries to read it back (and cannot — it hears nothing).
    sim.invoke_at(SimTime(10), ProcessId(EAST_A), RegOp::Write { reg: 0, value: 2024 });
    sim.invoke_at(SimTime(10_000), ProcessId(WEST_C), RegOp::Read { reg: 0 });
    sim.invoke_at(SimTime(10_000), ProcessId(EDGE_E), RegOp::Read { reg: 0 });
    sim.run();

    println!("run under 'edge cut off downstream':");
    for rec in sim.history().ops() {
        let resp = match rec.resp() {
            Some(RegResp::Ack { .. }) => "ack".to_string(),
            Some(RegResp::Value { value, .. }) => format!("read {value}"),
            None => "STUCK (as predicted: e ∉ U_f)".to_string(),
        };
        println!("  {:>7}: {:?} -> {}", name(rec.process), rec.op, resp);
    }
    let stuck = sim.history().ops().iter().filter(|r| !r.is_complete()).count();
    println!();
    println!(
        "{} of {} operations completed; the edge sensor's read hangs exactly as Theorem 2 predicts",
        sim.history().ops().len() - stuck,
        sim.history().ops().len()
    );
}
