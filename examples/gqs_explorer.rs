//! Explore the solvability landscape: how often do random fail-prone
//! systems admit a generalized quorum system, and how much does the GQS
//! relaxation buy over the strongly connected `QS+`?
//!
//! ```sh
//! cargo run --release --example gqs_explorer             # defaults
//! cargo run --release --example gqs_explorer -- 5 0.3 500
//! #                                              n  p_chan trials
//! ```

use gqs::core::finder::{find_gqs, gqs_exists, qs_plus_exists};
use gqs::core::NetworkGraph;
use gqs::simnet::SplitMix64;
use gqs::workloads::generators::rotating_fail_prone;
use gqs::workloads::Table;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = args.first().and_then(|a| a.parse().ok()).unwrap_or(4);
    let p_chan: f64 = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(0.3);
    let trials: u32 = args.get(2).and_then(|a| a.parse().ok()).unwrap_or(1_000);

    println!("rotating fail-prone systems on the complete graph K_{n}:");
    println!("one pattern per process (that process crashes), each remaining");
    println!("channel failing independently with probability {p_chan}; {trials} trials.");
    println!();

    let mut rng = SplitMix64::new(12345);
    let (mut gqs_n, mut qsp_n, mut gap_n) = (0u32, 0u32, 0u32);
    let mut example: Option<String> = None;
    for _ in 0..trials {
        let g = NetworkGraph::complete(n);
        let fp = rotating_fail_prone(&g, p_chan, &mut rng);
        let has_gqs = gqs_exists(&g, &fp);
        let has_qsp = qs_plus_exists(&g, &fp);
        gqs_n += has_gqs as u32;
        qsp_n += has_qsp as u32;
        if has_gqs && !has_qsp {
            gap_n += 1;
            if example.is_none() {
                let w = find_gqs(&g, &fp).expect("just checked");
                example = Some(format!("{fp}\n  -> {}", w.system));
            }
        }
    }

    let pct = |x: u32| format!("{:.1}%", 100.0 * x as f64 / trials as f64);
    let mut t = Table::new(["verdict", "fraction"]);
    t.row(["admits a GQS (solvable at all)", &pct(gqs_n)]);
    t.row(["admits a QS+ (strongly connected)", &pct(qsp_n)]);
    t.row(["GQS but NO QS+ (the paper's gap)", &pct(gap_n)]);
    println!("{t}");

    match example {
        Some(e) => {
            println!("an example system in the gap (solvable only via one-way reachability):");
            println!("  {e}");
        }
        None => {
            println!("no gap witness found at these parameters — try p_chan between 0.2 and 0.4")
        }
    }
}
