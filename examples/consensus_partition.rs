//! Consensus through a one-way partition: Figure 6 vs pull-based Paxos.
//!
//! Under Figure 1's pattern `f1`, process `c` can send but never receive.
//! The paper's protocol has no 1A message — every process *pushes* its 1B
//! to the new leader when the synchronizer rotates — so `c`'s state still
//! reaches leaders and decisions happen inside `U_f1 = {a, b}`. A
//! classical Paxos whose leader must *request* 1Bs can never assemble a
//! read quorum and stalls forever.
//!
//! ```sh
//! cargo run --example consensus_partition
//! ```

use gqs::checker::check_consensus;
use gqs::consensus::{gqs_consensus_nodes, ProposalMode};
use gqs::core::systems::figure1;
use gqs::core::ProcessId;
use gqs::simnet::{DelayModel, FailureSchedule, SimConfig, SimTime, Simulation};
use gqs::workloads::convert;

fn run(mode: ProposalMode, horizon: u64) -> (bool, Option<(u64, u64)>, u64) {
    let fig = figure1();
    let nodes = gqs_consensus_nodes::<u64>(&fig.gqs, 150, mode);
    let cfg = SimConfig {
        seed: 11,
        delay: DelayModel::PartialSynchrony { pre_min: 1, pre_max: 80, gst: 500, delta: 5 },
        horizon: SimTime(horizon),
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(cfg, nodes);
    sim.apply_failures(&FailureSchedule::from_pattern_at(fig.fail_prone.pattern(0), SimTime(0)));
    sim.invoke_at(SimTime(10), ProcessId(0), 42u64); // a proposes
    sim.invoke_at(SimTime(15), ProcessId(1), 43u64); // b proposes
    sim.run_until_ops_complete();
    let outs = convert::consensus_outcomes(sim.history());
    check_consensus(&outs).expect("agreement and validity always hold");
    let decided = sim.history().all_complete();
    let detail = sim
        .node(ProcessId(0))
        .inner()
        .decision()
        .map(|(v, view, t)| ((*v, *view), t.ticks()))
        .map(|((v, view), t)| (v, view, t));
    (decided, detail.map(|(v, view, _)| (v, view)), detail.map(|(_, _, t)| t).unwrap_or(0))
}

fn main() {
    println!("scenario: Figure 1 pattern f1 — d crashed, c receives nothing");
    println!("proposers: a (42) and b (43); partial synchrony with GST = 500");
    println!();

    let (decided, detail, when) = run(ProposalMode::Push, 3_000_000);
    println!("Figure 6 (1B pushed on view entry):");
    match (decided, detail) {
        (true, Some((v, view))) => {
            println!("  decided value {v} in view {view} at t = {when} ✓");
        }
        _ => println!("  did not decide (unexpected!)"),
    }

    let (decided, _, _) = run(ProposalMode::Pull, 600_000);
    println!("pull-based Paxos (leader broadcasts 1A and waits):");
    if decided {
        println!("  decided (unexpected!)");
    } else {
        println!("  stalled forever: no read quorum can respond — {{a,c}} needs c to hear the 1A,");
        println!("  {{b,d}} needs the crashed d. Exactly the paper's Example 3. ✗");
    }

    println!();
    println!("same quorums, same network, same failures — the only difference is");
    println!("who initiates phase 1. Unidirectional reachability is usable only by push.");
}
