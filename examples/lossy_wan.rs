//! A lossy 3-region WAN loses a region and heals — and no client ever
//! retries.
//!
//! Fifteen processes in three 5-process regions run the self-healing
//! register stack: `reliable_abd_register_nodes` (quorum engines that
//! retransmit their own phase messages on a timer) under flooding, over
//! channels that drop 5% of all messages. A `gqs_faults` script then cuts
//! region 1's entire inter-region boundary during `[2000, 6000)` and
//! heals it. Every operation — including the ones invoked inside the dark
//! region, mid-outage — is invoked exactly once; the engine's
//! ack/retransmit machinery absorbs both the background loss and the
//! outage:
//!
//! * **before** — completes despite 5% message loss (retransmits cover
//!   the gaps);
//! * **during** — region 1's operations stall at the cut, the rest keep
//!   serving; nothing is abandoned;
//! * **after the heal** — the stalled operations' retransmissions get
//!   through and every operation in the run completes.
//!
//! Contrast with `region_outage.rs`, where the plain (fire-once) ABD
//! engine permanently loses every operation invoked in the dark region.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example lossy_wan
//! ```

use gqs::core::{majority_system, ProcessId};
use gqs::faults::{regions, scenarios};
use gqs::registers::{reliable_abd_register_nodes, RegOp};
use gqs::simnet::{Flood, SimConfig, SimTime, Simulation, StopReason, Topology};
use gqs::workloads::Table;

fn main() {
    let (graph, layout) = regions::regions(3, 5);
    let n = graph.len();
    let loss = 0.05;
    let outage = (SimTime(2_000), SimTime(6_000));
    println!(
        "== 3-region WAN (n = {n}), {:.0}% message loss, region 1 dark during [{}, {}) ==\n",
        loss * 100.0,
        outage.0,
        outage.1
    );

    let qs = majority_system(n).expect("majority quorums");
    let retry_interval = 150;
    let nodes: Vec<_> = reliable_abd_register_nodes::<u8, u64>(
        n,
        qs.reads().clone(),
        qs.writes().clone(),
        0,
        retry_interval,
    )
    .into_iter()
    .map(Flood::new)
    .collect();
    let cfg = SimConfig {
        topology: Topology::from(graph.clone()),
        horizon: SimTime(1_000_000),
        loss,
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(cfg, nodes);
    scenarios::region_outage(&layout, &graph, 1, outage.0, outage.1).apply(&mut sim);

    // One write + one read per process per phase — each invoked once.
    let phases = [("before", 500u64), ("during", 3_000), ("after", 7_000)];
    let mut ops = Vec::new(); // (phase, region, op id)
    for (phase, at) in phases {
        for p in 0..n {
            let region = layout.region_of(ProcessId(p));
            let w = sim.invoke_at(
                SimTime(at + p as u64 * 20),
                ProcessId(p),
                RegOp::Write { reg: 0, value: p as u64 },
            );
            let r = sim.invoke_at(
                SimTime(at + p as u64 * 20 + 10),
                ProcessId(p),
                RegOp::Read { reg: 0 },
            );
            ops.push((phase, region, w));
            ops.push((phase, region, r));
        }
    }
    let reason = sim.run_until_ops_complete();

    let mut t = Table::new(["phase", "region 0", "region 1 (dark)", "region 2"]);
    for (phase, _) in phases {
        let mut row = vec![phase.to_string()];
        for region in 0..3 {
            let mine: Vec<_> = ops
                .iter()
                .filter(|(ph, r, _)| *ph == phase && *r == region)
                .map(|(_, _, id)| *id)
                .collect();
            let records: Vec<_> =
                sim.history().ops().iter().filter(|rec| mine.contains(&rec.id)).collect();
            let done = records.iter().filter(|r| r.is_complete()).count();
            let lats: Vec<u64> = records.iter().filter_map(|r| r.latency()).collect();
            let lat = if lats.is_empty() {
                "-".to_string()
            } else {
                format!("{:.0} ticks", lats.iter().sum::<u64>() as f64 / lats.len() as f64)
            };
            row.push(format!("{:3.0}% ({lat})", 100.0 * done as f64 / mine.len() as f64));
        }
        t.row(row);
    }
    println!("{t}");
    let s = sim.stats();
    println!(
        "Stop reason: {reason:?}. Every operation completed — the mid-outage \n\
         ops from region 1 just carry ~3000 ticks of outage in their latency \n\
         (their retransmissions got through right after the heal). The noise \n\
         floor the stack absorbed: {} messages lost to the 5% channel loss, \n\
         {} eaten by the dark cut, {} retransmissions to cover it all. No \n\
         client retried anything.",
        s.dropped_lossy, s.dropped_disconnected, s.retransmitted
    );
    assert_eq!(reason, StopReason::OpsComplete, "the self-healing stack finishes every op");
}
