//! Quickstart: the paper's Figure 1, end to end.
//!
//! Builds the running example's generalized quorum system, shows the
//! solvability verdicts, then runs the atomic register protocol under
//! failure pattern `f1` and checks the execution.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use gqs::checker::spec::RegisterSpec;
use gqs::checker::wg::check_linearizable;
use gqs::core::finder::{find_gqs, qs_plus_exists};
use gqs::core::systems::figure1;
use gqs::core::ProcessId;
use gqs::registers::{gqs_register_nodes, RegOp, RegResp};
use gqs::simnet::{FailureSchedule, SimConfig, SimTime, Simulation, StopReason};
use gqs::workloads::convert;

fn main() {
    // ---- Theory: Figure 1 admits a GQS but no QS+ --------------------
    let fig = figure1();
    println!("Figure 1 network: {}", fig.graph);
    println!("fail-prone system: {}", fig.fail_prone);
    println!();

    let witness = find_gqs(&fig.graph, &fig.fail_prone).expect("Figure 1 admits a GQS");
    println!("GQS found: {}", witness.system);
    println!("QS+ exists: {}", qs_plus_exists(&fig.graph, &fig.fail_prone));
    for i in 0..4 {
        println!("  U_f{} = {} (wait-freedom guaranteed exactly here)", i + 1, fig.gqs.u_f(i));
    }
    println!();

    // ---- Practice: run the register under pattern f1 -----------------
    // f1: process d may crash; channels (a,c), (b,c), (c,b) disconnect.
    // U_f1 = {a, b}: operations invoked at a and b must terminate.
    let nodes = gqs_register_nodes::<u8, u64>(&fig.gqs, 0, 20);
    let cfg = SimConfig { seed: 42, horizon: SimTime(60_000), ..SimConfig::default() };
    let mut sim = Simulation::new(cfg, nodes);
    sim.apply_failures(&FailureSchedule::from_pattern_at(fig.fail_prone.pattern(0), SimTime(0)));

    let a = ProcessId(0);
    let b = ProcessId(1);
    sim.invoke_at(SimTime(10), a, RegOp::Write { reg: 0, value: 7 });
    sim.invoke_at(SimTime(8_000), b, RegOp::Read { reg: 0 });
    sim.invoke_at(SimTime(16_000), b, RegOp::Write { reg: 0, value: 9 });
    sim.invoke_at(SimTime(24_000), a, RegOp::Read { reg: 0 });

    let reason = sim.run_until_ops_complete();
    assert_eq!(reason, StopReason::OpsComplete);
    println!("register run under f1 (d crashed; channels (a,c),(b,c),(c,b) down):");
    for rec in sim.history().ops() {
        let resp = match rec.resp() {
            Some(RegResp::Ack { version }) => format!("ack (version {version:?})"),
            Some(RegResp::Value { value, version }) => format!("{value} (version {version:?})"),
            None => "pending".into(),
        };
        println!(
            "  {} at {}: {:?} -> {} [latency {}]",
            rec.id,
            rec.process,
            rec.op,
            resp,
            rec.latency().map(|l| l.to_string()).unwrap_or_else(|| "-".into()),
        );
    }

    // ---- Verdict ------------------------------------------------------
    let entries = convert::register_entries(sim.history(), 0);
    let ok = check_linearizable(&RegisterSpec::new(0u64), &entries).is_ok();
    println!();
    println!("linearizable: {ok}");
    println!("messages delivered: {} (flooding included)", sim.stats().delivered);
    assert!(ok);
}
