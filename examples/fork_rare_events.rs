//! Fork replay: branch one consensus run into heal-timing permutations.
//!
//! Twelve processes in three 4-process regions run the Figure 6 push
//! consensus (majority quorums, `C = 50`, `δ = 5`) under partial
//! synchrony. At `t = 100` — after every proposal is in flight but
//! before any view can complete — the boundaries of regions 1 *and* 2 go
//! dark, leaving three 4-process islands: nobody can assemble a majority
//! of 7, so every decision waits for the heals.
//!
//! The run is warmed exactly to the outage instant and snapshotted with
//! [`Simulation::checkpoint`]. Every branch then restores the same
//! checkpoint, applies one heal-timing permutation (when each region's
//! boundary comes back), reseeds the delivery RNG and runs to a
//! decision — so the expensive, *identical* prefix is simulated once,
//! and only the rare-event tails are explored. The table prints each
//! branch's decide latency in units of `C·δ`, the paper's §7 yardstick,
//! both absolute and measured from the first heal (one healed boundary
//! reconnects 8 ≥ 7 processes, so that is when a quorum first exists).
//!
//! ```text
//! cargo run --release --example fork_rare_events
//! ```

use gqs::consensus::majority_consensus_nodes;
use gqs::consensus::ProposalMode;
use gqs::core::ProcessId;
use gqs::faults::regions;
use gqs::simnet::{DelayModel, FailureSchedule, SimConfig, SimTime, Simulation, Topology};
use gqs::workloads::Table;

const C: u64 = 50;
const DELTA: u64 = 5;
const CDELTA: f64 = (C * DELTA) as f64;
const CUT_AT: u64 = 100;

fn main() {
    let (graph, layout) = regions::regions(3, 4);
    let n = graph.len();
    println!(
        "== fork replay: 3-region WAN (n = {n}), regions 1+2 dark from t = {CUT_AT} ==\n\
         one warmup to the outage instant, then one branch per heal permutation\n"
    );

    let nodes = majority_consensus_nodes::<u64>(n, C, ProposalMode::Push);
    let cfg = SimConfig {
        seed: 0xF0CC_A51A,
        delay: DelayModel::PartialSynchrony { pre_min: 1, pre_max: 100, gst: 1_000, delta: DELTA },
        topology: Topology::from(graph.clone()),
        horizon: SimTime(200_000),
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(cfg, nodes);

    // The warmup's fault schedule: both cuts go down, nothing heals yet —
    // each branch supplies its own heal times after the fork.
    let cuts: [Vec<_>; 2] = [layout.cut(&graph, 1), layout.cut(&graph, 2)];
    let mut outage = FailureSchedule::none();
    for cut in &cuts {
        for &ch in cut {
            outage.disconnect(ch, SimTime(CUT_AT));
        }
    }
    sim.apply_failures(&outage);
    for p in 0..n {
        sim.invoke_at(SimTime(10 + p as u64), ProcessId(p), p as u64 + 1);
    }

    // Warm to the instant the outage begins and snapshot everything:
    // clock, event queue, RNG position, liveness epochs, protocol state.
    sim.run_until(SimTime(CUT_AT));
    let cp = sim.checkpoint();
    assert!(
        (0..n).all(|p| sim.node(ProcessId(p)).inner().decision().is_none()),
        "the fork happens before anyone can decide"
    );

    let heal_times = [2_000u64, 6_000, 14_000];
    let mut t = Table::new(["heal r1", "heal r2", "decided at", "lat / C·δ", "post-heal / C·δ"]);
    let mut spread: Vec<f64> = Vec::new();
    for (b, (&h1, &h2)) in
        heal_times.iter().flat_map(|h1| heal_times.iter().map(move |h2| (h1, h2))).enumerate()
    {
        sim.restore(&cp);
        sim.reseed(0xB00 + b as u64);
        let mut heals = FailureSchedule::none();
        for (cut, at) in cuts.iter().zip([h1, h2]) {
            for &ch in cut {
                heals.heal(ch, SimTime(at));
            }
        }
        sim.apply_failures(&heals);
        sim.run_until_ops_complete();
        let decided_at = (0..n)
            .filter_map(|p| sim.node(ProcessId(p)).inner().decision().map(|&(_, _, at)| at))
            .min()
            .expect("a healed majority decides before the horizon");
        // A lone island of 4 cannot reach 7: the *first* heal is the
        // earliest instant any quorum can exist again.
        let first_heal = h1.min(h2);
        assert!(decided_at.ticks() >= first_heal, "no quorum can form before the first heal");
        let lat = decided_at.ticks() as f64 / CDELTA;
        spread.push(lat);
        t.row([
            format!("{h1}"),
            format!("{h2}"),
            format!("{decided_at:?}"),
            format!("{lat:.2}"),
            format!("{:.2}", (decided_at.ticks() - first_heal) as f64 / CDELTA),
        ]);
    }
    println!("{t}");
    let (lo, hi) = spread
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    println!(
        "decide-latency spread across {} branches: {lo:.2}..{hi:.2} C·δ — the whole\n\
         pre-outage prefix (proposals, early views, the cut itself) was simulated\n\
         once and forked; every branch replays only its own heal-timing tail.",
        spread.len()
    );
}
