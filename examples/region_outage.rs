//! A 3-region WAN loses a region, then heals: availability before,
//! during and after the outage.
//!
//! Twelve processes in three 4-process regions (cliques bridged
//! gateway-to-gateway in a ring, `gqs::faults::regions`) run a flooded
//! ABD majority register. A `gqs_faults` script cuts region 1's entire
//! inter-region boundary during `[2000, 6000)` and heals it. One
//! write+read pair is invoked at every process in each phase; the tables
//! show the availability story the fault-script engine is for:
//!
//! * **before** — everything completes;
//! * **during** — region 1 (4 nodes) cannot assemble a majority of 7 and
//!   its operations are lost, while regions 0 + 2 (8 nodes) keep serving;
//! * **after** — the healed cut restores full availability.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example region_outage
//! ```

use gqs::core::{majority_system, ProcessId};
use gqs::faults::{regions, scenarios};
use gqs::registers::{abd_register_nodes, RegOp};
use gqs::simnet::{Flood, SimConfig, SimTime, Simulation, Topology};
use gqs::workloads::Table;

fn main() {
    let (graph, layout) = regions::regions(3, 4);
    let n = graph.len();
    let outage = (SimTime(2_000), SimTime(6_000));
    println!("== 3-region WAN (n = {n}), region 1 dark during [{}, {}) ==\n", outage.0, outage.1);

    let qs = majority_system(n).expect("majority quorums");
    let nodes: Vec<_> =
        abd_register_nodes::<u8, u64>(n, qs.reads().clone(), qs.writes().clone(), 0)
            .into_iter()
            .map(Flood::new)
            .collect();
    let cfg = SimConfig {
        topology: Topology::from(graph.clone()),
        horizon: SimTime(1_000_000),
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(cfg, nodes);
    scenarios::region_outage(&layout, &graph, 1, outage.0, outage.1).apply(&mut sim);

    // One write + one read per process per phase.
    let phases = [("before", 500u64), ("during", 3_000), ("after", 7_000)];
    let mut ops = Vec::new(); // (phase, region, op id)
    for (phase, at) in phases {
        for p in 0..n {
            let region = layout.region_of(ProcessId(p));
            let w = sim.invoke_at(
                SimTime(at + p as u64 * 20),
                ProcessId(p),
                RegOp::Write { reg: 0, value: p as u64 },
            );
            let r = sim.invoke_at(
                SimTime(at + p as u64 * 20 + 10),
                ProcessId(p),
                RegOp::Read { reg: 0 },
            );
            ops.push((phase, region, w));
            ops.push((phase, region, r));
        }
    }
    sim.run();

    let mut t = Table::new(["phase", "region 0", "region 1 (dark)", "region 2"]);
    for (phase, _) in phases {
        let mut row = vec![phase.to_string()];
        for region in 0..3 {
            let mine: Vec<_> = ops
                .iter()
                .filter(|(ph, r, _)| *ph == phase && *r == region)
                .map(|(_, _, id)| *id)
                .collect();
            let records: Vec<_> =
                sim.history().ops().iter().filter(|rec| mine.contains(&rec.id)).collect();
            let done = records.iter().filter(|r| r.is_complete()).count();
            let lats: Vec<u64> = records.iter().filter_map(|r| r.latency()).collect();
            let lat = if lats.is_empty() {
                "-".to_string()
            } else {
                format!("{:.0} ticks", lats.iter().sum::<u64>() as f64 / lats.len() as f64)
            };
            row.push(format!("{:3.0}% ({lat})", 100.0 * done as f64 / mine.len() as f64));
        }
        t.row(row);
    }
    println!("{t}");
    println!(
        "During the outage region 1 is a healthy island — its processes run but \n\
         cannot reach a majority across the cut, so their operations are lost \n\
         (the ABD engine does not retransmit). Regions 0 + 2 hold 8 >= 7 \n\
         processes and keep completing operations throughout. After the heal \n\
         every region serves again; dropped-send accounting: {} messages hit \n\
         the dark cut.",
        sim.stats().dropped_disconnected
    );
}
