//! A 3-region WAN outage, traced end to end: the self-healing register
//! stack rides out a dark region while a Chrome-trace sink records every
//! send, drop, retransmission, backoff timer and operation span.
//!
//! Nine processes in three 3-process regions (cliques bridged
//! gateway-to-gateway, `gqs::faults::regions`) run the reliable ABD
//! majority register — acked delivery with retransmit/backoff ladders.
//! A fault script cuts region 1's entire inter-region boundary during
//! `[2000, 6000)` and heals it. One write+read pair is invoked at every
//! process before and during the outage; because the delivery layer
//! keeps retrying, region 1's mid-outage operations *park* against the
//! cut instead of being lost, then complete in a burst when the heal
//! lands. The attached [`ChromeSink`] captures the whole story:
//!
//! * `cut_down` / `cut_heal` instants bracket the outage on the gateway
//!   tracks;
//! * `drop_disconnected` instants pile up on region 1's processes while
//!   `retransmit` + `timer_set`/`timer_fire` show the backoff ladders
//!   climbing;
//! * `op…` async spans for parked operations stretch across the outage
//!   and close just after the heal, with the `qaf_get`/`qaf_set`
//!   protocol phases nested inside.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example trace_outage
//! ```
//!
//! then load the written `trace_outage.json` into `chrome://tracing` or
//! <https://ui.perfetto.dev> (simulator ticks display as microseconds).

use gqs::core::{majority_system, ProcessId};
use gqs::faults::{regions, scenarios};
use gqs::registers::{reliable_abd_register_nodes, RegOp};
use gqs::simnet::{ChromeSink, Flood, SharedSink, SimConfig, SimTime, Simulation, Topology};
use gqs::workloads::Table;

/// Retransmit interval of the reliable delivery layer, in ticks.
const RETRY: u64 = 150;

fn main() {
    let (graph, layout) = regions::regions(3, 3);
    let n = graph.len();
    let outage = (SimTime(2_000), SimTime(6_000));
    println!(
        "== traced 3-region WAN (n = {n}), region 1 dark during [{}, {}) ==\n",
        outage.0, outage.1
    );

    let qs = majority_system(n).expect("majority quorums");
    let nodes: Vec<_> = reliable_abd_register_nodes::<u8, u64>(
        n,
        qs.reads().clone(),
        qs.writes().clone(),
        0,
        RETRY,
    )
    .into_iter()
    .map(Flood::new)
    .collect();
    let cfg = SimConfig {
        topology: Topology::from(graph.clone()),
        horizon: SimTime(1_000_000),
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(cfg, nodes);
    scenarios::region_outage(&layout, &graph, 1, outage.0, outage.1).apply(&mut sim);

    // The observability plane: one shared Chrome-trace sink sees the run.
    let sink = SharedSink::new(ChromeSink::new());
    sim.set_trace(Box::new(sink.clone()));

    // One write + one read per process, before and during the outage.
    let phases = [("before", 500u64), ("during", 3_000)];
    let mut ops = Vec::new(); // (phase, region, op id)
    for (phase, at) in phases {
        for p in 0..n {
            let region = layout.region_of(ProcessId(p));
            let w = sim.invoke_at(
                SimTime(at + p as u64 * 20),
                ProcessId(p),
                RegOp::Write { reg: 0, value: p as u64 },
            );
            let r = sim.invoke_at(
                SimTime(at + p as u64 * 20 + 10),
                ProcessId(p),
                RegOp::Read { reg: 0 },
            );
            ops.push((phase, region, w));
            ops.push((phase, region, r));
        }
    }
    sim.run_until_ops_complete();

    let mut t = Table::new(["phase", "region 0", "region 1 (dark)", "region 2"]);
    for (phase, _) in phases {
        let mut row = vec![phase.to_string()];
        for region in 0..3 {
            let mine: Vec<_> = ops
                .iter()
                .filter(|(ph, r, _)| *ph == phase && *r == region)
                .map(|(_, _, id)| *id)
                .collect();
            let records: Vec<_> =
                sim.history().ops().iter().filter(|rec| mine.contains(&rec.id)).collect();
            let done = records.iter().filter(|r| r.is_complete()).count();
            let lats: Vec<u64> = records.iter().filter_map(|r| r.latency()).collect();
            let lat = if lats.is_empty() {
                "-".to_string()
            } else {
                format!("{:.0} ticks", lats.iter().sum::<u64>() as f64 / lats.len() as f64)
            };
            row.push(format!("{:3.0}% ({lat})", 100.0 * done as f64 / mine.len() as f64));
        }
        t.row(row);
    }
    println!("{t}");

    let stats = sim.stats();
    println!(
        "Every operation completes: region 1's mid-outage ops park against the \n\
         cut while the delivery layer retries ({} retransmissions; {} sends hit \n\
         the dark boundary), then finish in a burst when the heal lands — their \n\
         mean latency above is dominated by the wait for the cut to heal.",
        stats.retransmitted, stats.dropped_disconnected
    );

    let trace = sink.with(std::mem::take).into_string();
    let events = trace.matches("\"ph\":").count();
    std::fs::write("trace_outage.json", &trace).expect("write trace_outage.json");
    println!(
        "\nWrote trace_outage.json ({events} trace events): load it in \n\
         chrome://tracing or https://ui.perfetto.dev and look for the op spans \n\
         stretching across [2000, 6000) on region 1's tracks, the retransmit \n\
         ladders beneath them, and the cut_heal instants that release the burst."
    );
}
