//! # gqs — generalized quorum systems
//!
//! A complete, executable reproduction of *"Tight Bounds on Channel
//! Reliability via Generalized Quorum Systems"* (PODC 2025): the theory
//! (fail-prone systems with process **and** channel failures, generalized
//! quorum systems, exact solvability decision procedures), the protocols
//! (quorum access functions with logical clocks, MWMR atomic registers,
//! SWMR snapshots, lattice agreement, partially synchronous consensus),
//! the substrate (a deterministic discrete-event network simulator with
//! crash/disconnection injection and partial synchrony), and the checkers
//! (linearizability, object safety, wait-freedom within `τ(f) = U_f`).
//!
//! This crate is a facade: each subsystem lives in its own crate and is
//! re-exported here under a stable module name.
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `gqs-core` | processes, channels, graphs, failure patterns, quorum systems, the GQS finder |
//! | [`simnet`] | `gqs-simnet` | the simulator, failure schedules, flooding middleware, histories |
//! | [`registers`] | `gqs-registers` | Figures 2–4: quorum access functions and atomic registers |
//! | [`snapshots`] | `gqs-snapshots` | Afek et al. snapshots over the registers |
//! | [`lattice`] | `gqs-lattice` | single-shot lattice agreement over the snapshots |
//! | [`consensus`] | `gqs-consensus` | Figure 6 consensus + view synchronizer + pull-Paxos baseline |
//! | [`checker`] | `gqs-checker` | Wing–Gong and §B dependency-graph linearizability, object safety |
//! | [`workloads`] | `gqs-workloads` | generators, experiment drivers E1–E12, tables |
//!
//! ## Quickstart
//!
//! ```
//! use gqs::core::systems::figure1;
//! use gqs::core::finder::{find_gqs, qs_plus_exists};
//!
//! let fig = figure1();
//! // Figure 1 admits a generalized quorum system ...
//! assert!(find_gqs(&fig.graph, &fig.fail_prone).is_some());
//! // ... but no strongly connected QS+ — the paper's headline separation.
//! assert!(!qs_plus_exists(&fig.graph, &fig.fail_prone));
//! // Wait-freedom is guaranteed exactly inside U_f (Theorems 1 and 2).
//! assert_eq!(fig.gqs.u_f(0).to_string(), "{a,b}");
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and the `gqs-bench`
//! crate for the experiment harness regenerating every table of
//! EXPERIMENTS.md.

#![forbid(unsafe_code)]

pub use gqs_checker as checker;
pub use gqs_consensus as consensus;
pub use gqs_core as core;
pub use gqs_lattice as lattice;
pub use gqs_registers as registers;
pub use gqs_simnet as simnet;
pub use gqs_snapshots as snapshots;
pub use gqs_workloads as workloads;
