//! # gqs — generalized quorum systems
//!
//! A complete, executable reproduction of *"Tight Bounds on Channel
//! Reliability via Generalized Quorum Systems"* (PODC 2025): the theory
//! (fail-prone systems with process **and** channel failures, generalized
//! quorum systems, exact solvability decision procedures), the protocols
//! (quorum access functions with logical clocks, MWMR atomic registers,
//! SWMR snapshots, lattice agreement, partially synchronous consensus),
//! the substrate (a deterministic discrete-event network simulator with
//! crash/disconnection injection and partial synchrony), and the checkers
//! (linearizability, object safety, wait-freedom within `τ(f) = U_f`).
//!
//! This crate is a facade: each subsystem lives in its own crate and is
//! re-exported here under a stable module name.
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `gqs-core` | processes, channels, graphs, failure patterns, quorum systems, the GQS finder |
//! | [`simnet`] | `gqs-simnet` | the simulator, failure schedules, flooding middleware, histories |
//! | [`registers`] | `gqs-registers` | Figures 2–4: quorum access functions and atomic registers |
//! | [`snapshots`] | `gqs-snapshots` | Afek et al. snapshots over the registers |
//! | [`lattice`] | `gqs-lattice` | single-shot lattice agreement over the snapshots |
//! | [`consensus`] | `gqs-consensus` | Figure 6 consensus + view synchronizer + pull-Paxos baseline |
//! | [`faults`] | `gqs-faults` | declarative fault scripts: region outages, flapping links, hub crashes, rolling restarts |
//! | [`checker`] | `gqs-checker` | Wing–Gong and §B dependency-graph linearizability, object safety |
//! | [`workloads`] | `gqs-workloads` | generators, experiment drivers E1–E12, tables |
//!
//! ## Quickstart
//!
//! ```
//! use gqs::core::systems::figure1;
//! use gqs::core::finder::{find_gqs, qs_plus_exists};
//!
//! let fig = figure1();
//! // Figure 1 admits a generalized quorum system ...
//! assert!(find_gqs(&fig.graph, &fig.fail_prone).is_some());
//! // ... but no strongly connected QS+ — the paper's headline separation.
//! assert!(!qs_plus_exists(&fig.graph, &fig.fail_prone));
//! // Wait-freedom is guaranteed exactly inside U_f (Theorems 1 and 2).
//! assert_eq!(fig.gqs.u_f(0).to_string(), "{a,b}");
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and the `gqs-bench`
//! crate for the experiment harness regenerating every table of
//! EXPERIMENTS.md.
//!
//! ## Scenario sweeps from the command line
//!
//! Large scenario grids run through the streaming sweep engine
//! ([`workloads::sweep`]) via the `gqs_sweep` binary. `gqs_sweep --help`:
//!
//! ```text
//! gqs_sweep — streamed scenario-grid sweeps over the GQS decision procedures
//!
//! USAGE:
//!     gqs_sweep [OPTIONS]
//!
//! GRID (each LIST is a value `6`, a comma list `4,6,8`, or an inclusive
//! range `4..8` / `4..16:4` / `0.1..0.5:0.2` — float ranges need a step):
//!     --family <F>         topology family: complete|ring|oriented-ring|star|
//!                          grid|two-cliques-bridge|regions|random
//!                                                              [default: complete]
//!     --n <LIST>           system sizes                        [default: 4]
//!     --density <LIST>     edge probability, random family only [default: 0.6]
//!     --regions <R>        region count, regions family only    [default: 3]
//!     --patterns <P>       pattern family: rotating|random|adversarial
//!                                                              [default: rotating]
//!     --pattern-count <K>  patterns per system (random/adversarial) [default: 3]
//!     --max-crashes <K>    max crashes per pattern (random)     [default: 1]
//!     --p-chan <LIST>      channel-failure probabilities        [default: 0.2]
//!     --schedule <LIST>    fault schedules for the simulated modes:
//!                          static|region-outage|flapping-link|hub-crash|
//!                          rolling-restart                      [default: static]
//!
//! EXECUTION:
//!     --mode <M>           solvability | latency | consensus | availability |
//!                          scale                  [default: solvability]
//!     --trials <N>         trials per cell                      [default: 100]
//!     --seed <S>           base seed                            [default: 42]
//!     --threads <T>        worker threads          [default: GQS_THREADS or auto]
//!     --shard <K>          trials per shard                     [default: 64]
//!
//! OUTPUT:
//!     --format <json|csv>  output format                        [default: json]
//!     --out <PATH>         write to PATH instead of stdout
//! ```
//!
//! For example, sweeping ring sizes against channel-failure rates:
//!
//! ```text
//! cargo run --release -p gqs-bench --bin gqs_sweep -- \
//!     --family ring --n 4..8 --patterns rotating \
//!     --p-chan 0.1,0.3,0.5 --trials 500 --format json
//! ```
//!
//! streams 7.5k trials with constant memory and prints per-cell
//! aggregates (count/mean/min/max/p50/p90/p99 of GQS and QS+ existence,
//! their gap, witness size, residual SCC count). Output is byte-identical
//! for any `--threads`/`GQS_THREADS` value and contains no timing, so
//! sweep reports diff cleanly in review.

#![forbid(unsafe_code)]

pub use gqs_checker as checker;
pub use gqs_consensus as consensus;
pub use gqs_core as core;
pub use gqs_faults as faults;
pub use gqs_lattice as lattice;
pub use gqs_registers as registers;
pub use gqs_simnet as simnet;
pub use gqs_snapshots as snapshots;
pub use gqs_workloads as workloads;
